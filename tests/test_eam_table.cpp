// EAM (many-body baseline with mid-evaluation communication) and tabulated
// pair style tests.
#include <gtest/gtest.h>

#include <cmath>

#include "pair/pair_eam.hpp"
#include "pair/pair_eam_kokkos.hpp"
#include "pair/pair_table.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::numerical_force;
using testing::total_pe;

std::unique_ptr<Simulation> make_eam_system(const std::string& style) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units metal");
  in.line("lattice fcc 3.615");  // copper-like
  in.line("create_atoms 3 3 3 jitter 0.03 2211");
  in.line("mass 1 63.55");
  in.line("pair_style " + style + " 4.5");
  in.line("pair_coeff * * 2.0 0.5");
  sim->thermo.print = false;
  return sim;
}

TEST(EAMKernel, DensityAndPairSmoothAtCutoff) {
  const double cutsq = 4.0;
  EXPECT_DOUBLE_EQ(PairEAM::rho_a(cutsq, cutsq), 0.0);
  EXPECT_DOUBLE_EQ(PairEAM::phi(cutsq, cutsq, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(PairEAM::drho_a(cutsq, cutsq), 0.0);
  EXPECT_GT(PairEAM::rho_a(1.0, cutsq), 0.0);
}

TEST(EAMKernel, DerivativesMatchNumerics) {
  const double cutsq = 20.25;  // cut = 4.5
  for (double r : {1.5, 2.5, 3.9}) {
    const double h = 1e-6;
    const double drho_num =
        (PairEAM::rho_a((r + h) * (r + h), cutsq) -
         PairEAM::rho_a((r - h) * (r - h), cutsq)) /
        (2 * h);
    EXPECT_NEAR(PairEAM::drho_a(r * r, cutsq) * r, drho_num, 1e-7);
    const double dphi_num =
        (PairEAM::phi((r + h) * (r + h), cutsq, 2.0) -
         PairEAM::phi((r - h) * (r - h), cutsq, 2.0)) /
        (2 * h);
    EXPECT_NEAR(PairEAM::dphi(r * r, cutsq, 2.0) * r, dphi_num, 1e-7);
    const double rho = 1.7;
    const double demb_num =
        (PairEAM::embed(rho + h, 3.0) - PairEAM::embed(rho - h, 3.0)) / (2 * h);
    EXPECT_NEAR(PairEAM::dembed(rho, 3.0), demb_num, 1e-8);
  }
}

TEST(EAMHost, ForcesMatchNumericalGradient) {
  auto sim = make_eam_system("eam");
  total_pe(*sim);
  sim->atom.template sync<kk::Host>(F_MASK);
  for (localint i : {0, 11}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = numerical_force(*sim, i, d);
      EXPECT_NEAR(fa, fn, 1e-5 * std::max(1.0, std::abs(fa)))
          << "atom " << i << " dim " << d;
      sim->atom.template sync<kk::Host>(F_MASK);
    }
  }
}

TEST(EAMHost, EmbeddingMakesItManyBody) {
  // EAM is not pairwise: the embedding energy changes nonlinearly when a
  // neighborhood is compressed uniformly.
  auto sim = make_eam_system("eam");
  auto* pair = dynamic_cast<PairEAM*>(sim->pair.get());
  ASSERT_NE(pair, nullptr);
  const double e = total_pe(*sim);
  EXPECT_LT(e, 0.0);  // cohesive
}

template <class Space>
void eam_kokkos_matches() {
  auto ref = make_eam_system("eam");
  const double e_ref = total_pe(*ref);
  ref->atom.sync<kk::Host>(F_MASK);

  auto sim =
      make_eam_system(Space::is_device ? "eam/kk/device" : "eam/kk/host");
  const double e = total_pe(*sim);
  EXPECT_NEAR(e, e_ref, 1e-10 * std::abs(e_ref));
  sim->atom.template sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  ref->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-9);
}

TEST(EAMKokkos, DeviceMatchesHost) { eam_kokkos_matches<kk::Device>(); }
TEST(EAMKokkos, HostSpaceMatchesLegacy) { eam_kokkos_matches<kk::Host>(); }

TEST(EAMKokkos, GhostFpTransfersOnlyWhenStale) {
  // The embedding-derivative DualView must not ping-pong: exactly one
  // device->host transfer per compute (for the forward comm) and one
  // host->device (after ghosts updated).
  auto sim = make_eam_system("eam/kk/device");
  total_pe(*sim);
  auto* pair = dynamic_cast<PairEAMKokkos<kk::Device>*>(sim->pair.get());
  ASSERT_NE(pair, nullptr);
  const std::size_t before = pair->fp().transfer_count();
  total_pe(*sim);
  const std::size_t per_compute = pair->fp().transfer_count() - before;
  EXPECT_EQ(per_compute, 2u);
}

TEST(PairTable, InterpolatesLJToTightTolerance) {
  init_all();
  auto lj = testing::make_lj_system(3, 0.8442, 0.05, "lj/cut");
  const double e_lj = total_pe(*lj);

  auto tab = std::make_unique<Simulation>();
  Input in(*tab);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 3 3 3 jitter 0.05 78123");
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  in.line("pair_style table 8000 2.5");
  in.line("pair_coeff * * lj 1.0 1.0");
  tab->thermo.print = false;
  const double e_tab = total_pe(*tab);
  EXPECT_NEAR(e_tab, e_lj, 5e-4 * std::abs(e_lj));
}

TEST(PairTable, MorseFormRuns) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units lj");
  in.line("lattice fcc 1.0");
  in.line("create_atoms 3 3 3");
  in.line("mass 1 1.0");
  in.line("pair_style table 2000 2.5");
  in.line("pair_coeff * * morse 1.0 2.0");
  sim->thermo.print = false;
  const double e = total_pe(*sim);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(PairTable, RejectsBadSettings) {
  PairTable t;
  EXPECT_THROW(t.settings({"1"}), Error);          // too few points
  EXPECT_THROW(t.settings({}), Error);             // missing args
  EXPECT_THROW(t.coeff({"*", "*", "exp", "1", "2"}), Error);  // unknown form
}

}  // namespace
}  // namespace mlk
