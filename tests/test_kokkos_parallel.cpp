#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "kokkos/core.hpp"

namespace {

template <class Space>
struct SpaceName;
template <>
struct SpaceName<kk::Host> {
  static constexpr const char* value = "Host";
};
template <>
struct SpaceName<kk::Device> {
  static constexpr const char* value = "Device";
};

template <class Space>
class ParallelPatterns : public ::testing::Test {};

using Spaces = ::testing::Types<kk::Host, kk::Device>;
TYPED_TEST_SUITE(ParallelPatterns, Spaces);

TYPED_TEST(ParallelPatterns, ForCoversEveryIndexOnce) {
  using Space = TypeParam;
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  kk::parallel_for("t::for", kk::RangePolicy<Space>(0, n),
                   [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TYPED_TEST(ParallelPatterns, ForHonorsBeginOffset) {
  using Space = TypeParam;
  std::atomic<long> sum{0};
  kk::parallel_for("t::for_offset", kk::RangePolicy<Space>(100, 200),
                   [&](std::size_t i) { sum.fetch_add(long(i)); });
  EXPECT_EQ(sum.load(), (100L + 199L) * 100L / 2L);
}

TYPED_TEST(ParallelPatterns, ReduceSum) {
  using Space = TypeParam;
  const std::size_t n = 100000;
  double sum = -1.0;
  kk::parallel_reduce("t::reduce", kk::RangePolicy<Space>(0, n),
                      [](std::size_t i, double& s) { s += double(i); }, sum);
  EXPECT_DOUBLE_EQ(sum, double(n) * double(n - 1) / 2.0);
}

TYPED_TEST(ParallelPatterns, ReduceMaxMin) {
  using Space = TypeParam;
  const std::size_t n = 5001;
  int maxv = 0, minv = 0;
  kk::parallel_reduce_impl(
      "t::max", kk::RangePolicy<Space>(0, n),
      [](std::size_t i, int& m) {
        const int v = int((i * 37) % 4999);
        if (v > m) m = v;
      },
      kk::Max<int>(maxv));
  kk::parallel_reduce_impl(
      "t::min", kk::RangePolicy<Space>(0, n),
      [](std::size_t i, int& m) {
        const int v = int((i * 37) % 4999) - 10;
        if (v < m) m = v;
      },
      kk::Min<int>(minv));
  EXPECT_EQ(maxv, 4998);
  EXPECT_EQ(minv, -10);
}

TYPED_TEST(ParallelPatterns, ExclusiveScanMatchesSerialPrefix) {
  using Space = TypeParam;
  const std::size_t n = 12345;
  std::vector<int> vals(n), prefix(n, -1);
  for (std::size_t i = 0; i < n; ++i) vals[i] = int(i % 7) + 1;
  long total = 0;
  kk::parallel_scan("t::scan", kk::RangePolicy<Space>(0, n),
                    [&](std::size_t i, long& update, bool final) {
                      if (final) prefix[i] = int(update);
                      update += vals[i];
                    },
                    total);
  long expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(prefix[i], expect) << "at " << i;
    expect += vals[i];
  }
  EXPECT_EQ(total, expect);
}

TYPED_TEST(ParallelPatterns, ScanEmptyRange) {
  using Space = TypeParam;
  long total = 99;
  kk::parallel_scan("t::scan_empty", kk::RangePolicy<Space>(0, 0),
                    [&](std::size_t, long& u, bool) { u += 1; }, total);
  EXPECT_EQ(total, 0);
}

TYPED_TEST(ParallelPatterns, MDRange2DCoversAllPairsOnce) {
  using Space = TypeParam;
  const std::size_t ni = 37, nj = 53;
  std::vector<std::atomic<int>> hits(ni * nj);
  kk::MDRangePolicy<Space, 2> p({ni, nj}, {8, 16});
  kk::parallel_for("t::md2", p, [&](std::size_t i, std::size_t j) {
    hits[i * nj + j].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TYPED_TEST(ParallelPatterns, MDRange3DCoversAllTriplesOnce) {
  using Space = TypeParam;
  const std::size_t ni = 9, nj = 11, nk = 13;
  std::vector<std::atomic<int>> hits(ni * nj * nk);
  kk::MDRangePolicy<Space, 3> p({ni, nj, nk}, {4, 4, 4});
  kk::parallel_for("t::md3", p,
                   [&](std::size_t i, std::size_t j, std::size_t k) {
                     hits[(i * nj + j) * nk + k].fetch_add(1);
                   });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TYPED_TEST(ParallelPatterns, NestedDispatchRunsInline) {
  using Space = TypeParam;
  std::atomic<int> count{0};
  kk::parallel_for("t::outer", kk::RangePolicy<Space>(0, 4),
                   [&](std::size_t) {
                     kk::parallel_for("t::inner", kk::RangePolicy<Space>(0, 8),
                                      [&](std::size_t) { count.fetch_add(1); });
                   });
  EXPECT_EQ(count.load(), 32);
}

TEST(Atomics, ConcurrentAddsAreExact) {
  double acc = 0.0;
  const std::size_t n = 200000;
  kk::parallel_for("t::atomadd", kk::RangePolicy<kk::Device>(0, n),
                   [&](std::size_t) { kk::atomic_add(&acc, 1.0); });
  EXPECT_DOUBLE_EQ(acc, double(n));
}

TEST(Atomics, AtomicMax) {
  int m = 0;
  kk::parallel_for("t::atommax", kk::RangePolicy<kk::Device>(0, 10000),
                   [&](std::size_t i) { kk::atomic_max(&m, int(i % 997)); });
  EXPECT_EQ(m, 996);
}

TEST(Profiling, RecordsLaunchesAndItems) {
  kk::profiling::reset();
  kk::parallel_for("prof::k1", kk::RangePolicy<kk::Device>(0, 100),
                   [](std::size_t) {});
  kk::parallel_for("prof::k1", kk::RangePolicy<kk::Device>(0, 50),
                   [](std::size_t) {});
  kk::parallel_for("prof::k2", kk::RangePolicy<kk::Host>(0, 10),
                   [](std::size_t) {});
  auto snap = kk::profiling::snapshot();
  EXPECT_EQ(snap["prof::k1"].launches, 2u);
  EXPECT_EQ(snap["prof::k1"].device_launches, 2u);
  EXPECT_EQ(snap["prof::k1"].total_items, 150u);
  EXPECT_EQ(snap["prof::k2"].launches, 1u);
  EXPECT_EQ(snap["prof::k2"].device_launches, 0u);
  EXPECT_EQ(kk::profiling::total_device_launches(), 2u);
  kk::profiling::reset();
  EXPECT_EQ(kk::profiling::total_launches(), 0u);
}

TEST(Profiling, DisableSuppressesRecording) {
  kk::profiling::reset();
  const bool prev = kk::profiling::set_enabled(false);
  kk::parallel_for("prof::off", kk::RangePolicy<kk::Device>(0, 10),
                   [](std::size_t) {});
  EXPECT_EQ(kk::profiling::total_launches(), 0u);
  kk::profiling::set_enabled(prev);
}

}  // namespace
