// Comm/compute overlap (docs/EXECUTION_MODEL.md): the interior/boundary
// neighbor partition, and bitwise identity of the overlapped Verlet force
// phase against the serialized path for the melt example — serial and
// decomposed over simmpi ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "comm/simmpi.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

struct Snapshot {
  std::vector<double> x, v;
  double pe = 0.0;
  double ke = 0.0;
};

Snapshot snapshot(Simulation& sim) {
  sim.atom.sync<kk::Host>(X_MASK | V_MASK);
  const auto x = sim.atom.k_x.h_view;
  const auto v = sim.atom.k_v.h_view;
  Snapshot s;
  for (localint i = 0; i < sim.atom.nlocal; ++i) {
    for (int d = 0; d < 3; ++d) {
      s.x.push_back(x(std::size_t(i), std::size_t(d)));
      s.v.push_back(v(std::size_t(i), std::size_t(d)));
    }
  }
  s.pe = sim.potential_energy();
  s.ke = sim.kinetic_energy();
  return s;
}

/// Same-length position/velocity arrays must match to the last bit; the
/// energies (different summation grouping in the split reduction) to a
/// relative tolerance.
void expect_bitwise(const Snapshot& a, const Snapshot& b) {
  ASSERT_EQ(a.x.size(), b.x.size());
  ASSERT_EQ(a.v.size(), b.v.size());
  for (std::size_t k = 0; k < a.x.size(); ++k) {
    ASSERT_EQ(a.x[k], b.x[k]) << "position diverged at component " << k;
    ASSERT_EQ(a.v[k], b.v[k]) << "velocity diverged at component " << k;
  }
  EXPECT_NEAR(a.pe, b.pe, 1e-9 * std::abs(a.pe) + 1e-12);
  EXPECT_NEAR(a.ke, b.ke, 1e-9 * std::abs(a.ke) + 1e-12);
}

TEST(NeighborPartition, InteriorPlusBoundaryCoversOwnedRows) {
  auto sim = make_lj_system(3, 0.8442, 0.05, "lj/cut/kk");
  sim->setup();
  const NeighborList& l = sim->neighbor.list;
  EXPECT_EQ(l.ninterior + l.nboundary, l.inum);
  // Serial box: every atom has ghost neighbors from the periodic images, so
  // the partition must find boundary rows; a 3-cell box also keeps interior
  // rows... validate the defining property row by row instead of counts.
  std::vector<char> seen(std::size_t(l.inum), 0);
  const auto neigh = l.k_neighbors.h_view;
  const auto num = l.k_numneigh.h_view;
  auto row_is_interior = [&](localint i) {
    for (int jj = 0; jj < num(std::size_t(i)); ++jj)
      if (neigh(std::size_t(i), std::size_t(jj)) >= l.inum) return false;
    return true;
  };
  for (localint k = 0; k < l.ninterior; ++k) {
    const int i = l.k_interior.h_view(std::size_t(k));
    EXPECT_TRUE(row_is_interior(i)) << "row " << i << " misclassified";
    seen[std::size_t(i)]++;
  }
  for (localint k = 0; k < l.nboundary; ++k) {
    const int i = l.k_boundary.h_view(std::size_t(k));
    EXPECT_FALSE(row_is_interior(i)) << "row " << i << " misclassified";
    seen[std::size_t(i)]++;
  }
  for (localint i = 0; i < l.inum; ++i)
    EXPECT_EQ(seen[std::size_t(i)], 1) << "row " << i << " not covered once";
}

TEST(Overlap, DeviceStyleSupportsOverlapHostDefaultDoesNot) {
  auto dev = make_lj_system(2, 0.8442, 0.02, "lj/cut/kk");
  dev->setup();
  EXPECT_TRUE(dev->pair->supports_overlap(dev->neighbor.list));

  // Host kokkos default is half + newton on: no early interior pass.
  auto host = make_lj_system(2, 0.8442, 0.02, "lj/cut/kk/host");
  host->setup();
  EXPECT_FALSE(host->pair->supports_overlap(host->neighbor.list));

  // Plain (non-kokkos) style has no overlap implementation at all.
  auto plain = make_lj_system(2, 0.8442, 0.02, "lj/cut");
  plain->setup();
  EXPECT_FALSE(plain->pair->supports_overlap(plain->neighbor.list));
  EXPECT_THROW(plain->pair->compute_boundary(*plain, true), Error);
}

Snapshot run_serial_melt(bool overlap, int steps) {
  auto sim = make_lj_system(3, 0.8442, 0.02, "lj/cut/kk", 1.44);
  sim->overlap_enabled = overlap;
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("thermo 10");
  in.line("run " + std::to_string(steps));
  return snapshot(*sim);
}

TEST(Overlap, SerialMeltTrajectoryBitwiseIdentical) {
  const Snapshot serialized = run_serial_melt(false, 40);
  const Snapshot overlapped = run_serial_melt(true, 40);
  expect_bitwise(serialized, overlapped);
}

std::vector<Snapshot> run_multirank_melt(int nranks, bool overlap, int steps) {
  init_all();
  std::vector<Snapshot> out(static_cast<std::size_t>(nranks));
  std::mutex mu;
  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.overlap_enabled = overlap;
    sim.thermo.print = false;
    Input in(sim);
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    in.line("create_atoms 4 4 4 jitter 0.02 771");
    in.line("mass 1 1.0");
    in.line("velocity all create 1.44 87287");
    in.line("suffix kk");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo 10");
    in.line("run " + std::to_string(steps));
    Snapshot s = snapshot(sim);  // collectives: every rank participates
    std::lock_guard<std::mutex> lk(mu);
    out[std::size_t(comm.rank())] = std::move(s);
  });
  return out;
}

TEST(Overlap, TwoRankMeltTrajectoryBitwiseIdentical) {
  const auto serialized = run_multirank_melt(2, false, 30);
  const auto overlapped = run_multirank_melt(2, true, 30);
  ASSERT_EQ(serialized.size(), overlapped.size());
  for (std::size_t r = 0; r < serialized.size(); ++r)
    expect_bitwise(serialized[r], overlapped[r]);
}

TEST(Overlap, EnvVarEnablesOverlap) {
  setenv("MLK_OVERLAP", "1", 1);
  Simulation on;
  EXPECT_TRUE(on.overlap_enabled);
  setenv("MLK_OVERLAP", "0", 1);
  Simulation off;
  EXPECT_FALSE(off.overlap_enabled);
  unsetenv("MLK_OVERLAP");
  Simulation unset;
  EXPECT_FALSE(unset.overlap_enabled);
}

TEST(Overlap, InputCommandTogglesOverlap) {
  Simulation sim;
  Input in(sim);
  in.line("overlap on");
  EXPECT_TRUE(sim.overlap_enabled);
  in.line("overlap off");
  EXPECT_FALSE(sim.overlap_enabled);
}

}  // namespace
}  // namespace mlk
