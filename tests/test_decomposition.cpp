#include <gtest/gtest.h>

#include "comm/decomposition.hpp"
#include "util/error.hpp"

namespace {
using mlk::factor_grid;
using mlk::grid_rank;
using mlk::make_grid;
using mlk::ProcGrid;
using mlk::subbox_bounds;

TEST(FactorGrid, ProductEqualsRanks) {
  for (int p : {1, 2, 3, 4, 6, 8, 12, 16, 64, 100, 128}) {
    auto np = factor_grid(p, 10.0, 10.0, 10.0);
    EXPECT_EQ(np[0] * np[1] * np[2], p) << "p=" << p;
  }
}

TEST(FactorGrid, CubicBoxPrefersBalancedGrid) {
  auto np = factor_grid(8, 10.0, 10.0, 10.0);
  EXPECT_EQ(np[0], 2);
  EXPECT_EQ(np[1], 2);
  EXPECT_EQ(np[2], 2);
}

TEST(FactorGrid, ElongatedBoxSplitsLongDimension) {
  auto np = factor_grid(4, 40.0, 10.0, 10.0);
  EXPECT_EQ(np[0], 4);
  EXPECT_EQ(np[1], 1);
  EXPECT_EQ(np[2], 1);
}

TEST(MakeGrid, CoordinatesRoundTrip) {
  const int P = 12;
  for (int r = 0; r < P; ++r) {
    ProcGrid g = make_grid(r, P, 10.0, 10.0, 10.0);
    EXPECT_EQ(grid_rank(g, g.coord[0], g.coord[1], g.coord[2]), r);
  }
}

TEST(MakeGrid, NeighborSymmetry) {
  // my lo-neighbor's hi-neighbor is me (periodic wrap included).
  const int P = 8;
  for (int r = 0; r < P; ++r) {
    ProcGrid g = make_grid(r, P, 10.0, 10.0, 10.0);
    for (int d = 0; d < 3; ++d) {
      ProcGrid glo = make_grid(g.neighbor_lo[d], P, 10.0, 10.0, 10.0);
      EXPECT_EQ(glo.neighbor_hi[d], r) << "rank " << r << " dim " << d;
    }
  }
}

TEST(SubboxBounds, TileTheBoxExactly) {
  const int P = 6;
  for (int d = 0; d < 3; ++d) {
    double covered = 0.0;
    for (int r = 0; r < P; ++r) {
      ProcGrid g = make_grid(r, P, 12.0, 8.0, 4.0);
      double lo, hi;
      subbox_bounds(g, d, 0.0, 12.0, &lo, &hi);
      EXPECT_LT(lo, hi);
      covered += (hi - lo);
    }
    // Each slab counted np[other dims] times; total = 12 * P / np[d].
    ProcGrid g0 = make_grid(0, P, 12.0, 8.0, 4.0);
    EXPECT_NEAR(covered, 12.0 * P / g0.np[d], 1e-12);
  }
}

TEST(SubboxBounds, AdjacentRanksShareFaces) {
  const int P = 4;
  ProcGrid g0 = make_grid(0, P, 16.0, 1.0, 1.0);
  ASSERT_EQ(g0.np[0], 4);
  for (int r = 0; r + 1 < P; ++r) {
    ProcGrid a = make_grid(r, P, 16.0, 1.0, 1.0);
    ProcGrid b = make_grid(r + 1, P, 16.0, 1.0, 1.0);
    double alo, ahi, blo, bhi;
    subbox_bounds(a, 0, 0.0, 16.0, &alo, &ahi);
    subbox_bounds(b, 0, 0.0, 16.0, &blo, &bhi);
    EXPECT_DOUBLE_EQ(ahi, blo);
  }
}

TEST(MakeGrid, SingleRankIsItsOwnNeighbor) {
  ProcGrid g = make_grid(0, 1, 5.0, 5.0, 5.0);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(g.neighbor_lo[d], 0);
    EXPECT_EQ(g.neighbor_hi[d], 0);
  }
}

TEST(MakeGrid, RejectsBadRank) {
  EXPECT_THROW(make_grid(4, 4, 1.0, 1.0, 1.0), mlk::Error);
  EXPECT_THROW(factor_grid(0, 1.0, 1.0, 1.0), mlk::Error);
}

}  // namespace
