// Tests for the extended engine features: NVT thermostat, RDF, XYZ dump,
// charged LJ, velocity scaling, `set` command, script files, and the §3.2
// claim that flag-driven sync eliminates redundant host<->device transfers
// during a fully device-resident run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "engine/compute_rdf.hpp"
#include "engine/dump_xyz.hpp"
#include "engine/fix_nvt.hpp"
#include "pair/pair_lj_cut_coul_cut.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;
using testing::total_pe;

TEST(FixNVT, ThermostatsToTargetTemperature) {
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 0.7);
  Input in(*sim);
  in.line("fix 1 all nvt 1.6 0.25");
  in.line("thermo 100");
  in.line("run 2500");
  // Time-averaged tail temperature near the target.
  const auto& rows = sim->thermo.rows();
  double avg = 0.0;
  int count = 0;
  for (std::size_t k = 3 * rows.size() / 4; k < rows.size(); ++k) {
    avg += rows[k].temp;
    ++count;
  }
  avg /= count;
  EXPECT_NEAR(avg, 1.6, 0.2);
}

TEST(FixNVT, RejectsBadArgs) {
  FixNVT f;
  EXPECT_THROW(f.parse_args({"1.0"}), Error);
  EXPECT_THROW(f.parse_args({"-1.0", "0.5"}), Error);
  EXPECT_THROW(f.parse_args({"1.0", "0"}), Error);
}

TEST(ComputeRDF, FccColdLatticePeaksAtNearestNeighborDistance) {
  auto sim = make_lj_system(4, 0.8442, 0.0, "lj/cut", 0.0);
  sim->setup();
  ComputeRDF rdf(120, 2.5);
  rdf.evaluate(*sim);
  // First (and tallest) peak at the fcc nearest-neighbor distance
  // a/sqrt(2) with a = (4/rho)^(1/3).
  const double a = std::cbrt(4.0 / 0.8442);
  const double r_nn = a / std::sqrt(2.0);
  double best_r = 0.0, best_g = 0.0;
  for (std::size_t b = 0; b < rdf.gr().size(); ++b)
    if (rdf.gr()[b] > best_g) {
      best_g = rdf.gr()[b];
      best_r = rdf.r_centers()[b];
    }
  EXPECT_NEAR(best_r, r_nn, 0.05);
  EXPECT_GT(best_g, 10.0);  // delta-like crystal peak
}

TEST(ComputeRDF, LiquidStructureIsNormalized) {
  // After a melt, g(r) -> O(1) between peaks and integrates sensibly.
  auto sim = make_lj_system(4, 0.8442, 0.0, "lj/cut", 1.44);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("thermo 200");
  in.line("run 200");
  ComputeRDF rdf(100, 2.5);
  rdf.evaluate(*sim);
  // Tail (r near cutoff) should be near 1 for a homogeneous liquid.
  double tail = 0.0;
  int count = 0;
  for (std::size_t b = rdf.gr().size() - 10; b < rdf.gr().size(); ++b) {
    tail += rdf.gr()[b];
    ++count;
  }
  EXPECT_NEAR(tail / count, 1.0, 0.25);
  // Excluded core: g(r) == 0 below ~0.8 sigma.
  EXPECT_NEAR(rdf.gr()[5], 0.0, 1e-12);
}

TEST(DumpXYZ, WritesFramesWithAllAtoms) {
  const std::string path = "/tmp/mlk_test_dump.xyz";
  std::remove(path.c_str());
  auto sim = make_lj_system(2, 0.8442, 0.0, "lj/cut", 1.0);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("fix d all dump/xyz 5 " + path);
  in.line("thermo 10");
  in.line("run 10");

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(std::stoi(line), 32);  // 2^3 fcc cells = 32 atoms
  std::getline(f, line);
  EXPECT_NE(line.find("step="), std::string::npos);
  int atom_lines = 0, frames = 1;
  while (std::getline(f, line)) {
    std::istringstream is(line);
    int t;
    double x, y, z;
    if (is >> t >> x >> y >> z)
      ++atom_lines;
    else if (line == "32")
      ++frames;
  }
  EXPECT_EQ(frames, 2);           // steps 5 and 10
  EXPECT_EQ(atom_lines, 2 * 32);
  std::remove(path.c_str());
}

TEST(LJCoulCut, ReducesToPlainLJWithZeroCharges) {
  auto plain = make_lj_system(3, 0.8442, 0.05, "lj/cut");
  const double e_plain = total_pe(*plain);

  auto charged = make_lj_system(3, 0.8442, 0.05, "lj/cut/coul/cut");
  const double e_charged = total_pe(*charged);
  EXPECT_NEAR(e_charged, e_plain, 1e-12 * std::abs(e_plain));
}

TEST(LJCoulCut, TwoChargesMatchCoulombLaw) {
  // Two isolated charges in a big box: E = q1 q2 / r exactly (no periodic
  // image falls inside the Coulomb cutoff).
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  sim.domain.set_box(0, 12, 0, 12, 0, 12);
  sim.atom.set_ntypes(1);
  sim.atom.set_mass(1, 1.0);
  sim.atom.add_atom(1, 1, 1.0, 1.0, 1.0);
  sim.atom.add_atom(1, 2, 4.0, 1.0, 1.0);  // r = 3
  sim.atom.natoms = 2;
  sim.atom.k_q.h_view(0) = 0.5;
  sim.atom.k_q.h_view(1) = -0.2;
  sim.atom.k_q.modify<kk::Host>();
  sim.pair = StyleRegistry::instance().create_pair("lj/cut/coul/cut");
  sim.pair->settings({"0.9", "4.5"});
  sim.pair->ntypes_hint = 1;
  sim.pair->coeff({"*", "*", "0.0", "0.5"});
  const double e = total_pe(sim);
  EXPECT_NEAR(e, 0.5 * -0.2 / 3.0, 1e-12);
}

TEST(LJCoulCut, ForcesMatchNumericalGradient) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 3 3 3 jitter 0.05 78123");
  in.line("mass 1 1.0");
  in.line("set type 1 charge 0.3");
  in.line("pair_style lj/cut/coul/cut 2.5 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  sim->thermo.print = false;
  total_pe(*sim);
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i : {0, 17}) {
    for (int d = 0; d < 3; ++d) {
      const double fa = sim->atom.k_f.h_view(std::size_t(i), std::size_t(d));
      const double fn = testing::numerical_force(*sim, i, d);
      EXPECT_NEAR(fa, fn, 1e-5 * std::max(1.0, std::abs(fa)));
      sim->atom.sync<kk::Host>(F_MASK);
    }
  }
}

TEST(Input, VelocityScaleHitsTarget) {
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 1.0);
  sim->setup();
  Input in(*sim);
  in.line("velocity all scale 2.5");
  EXPECT_NEAR(sim->temperature(), 2.5, 1e-9);
}

TEST(Input, ScriptFileRunsEndToEnd) {
  const std::string path = "/tmp/mlk_test_script.lmp";
  {
    std::ofstream f(path);
    f << "# test script\n"
      << "units lj\n"
      << "lattice fcc 0.8442\n"
      << "create_atoms 3 3 3\n"
      << "mass 1 1.0\n"
      << "velocity all create 1.44 87287\n"
      << "pair_style lj/cut 2.5\n"
      << "pair_coeff * * 1.0 1.0\n"
      << "fix 1 all nve\n"
      << "thermo 10\n"
      << "run 20\n";
  }
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.file(path);
  EXPECT_EQ(sim.ntimestep, 20);
  EXPECT_EQ(sim.atom.natoms, 108);
  std::remove(path.c_str());
  EXPECT_THROW(in.file("/tmp/does_not_exist.lmp"), Error);
}

TEST(DataMovement, DeviceResidentRunAvoidsTransfers) {
  // §3.2: a run where every style executes on the device should incur O(1)
  // position transfers, not O(steps). (Host-side comm packs positions each
  // step, so x syncs device->host once per step but never back.)
  auto sim = make_lj_system(2, 0.8442, 0.0, "lj/cut/kk", 1.0);
  Input in(*sim);
  in.line("fix 1 all nve/kk");
  in.line("thermo 100");
  sim->setup();
  const std::size_t before_f = sim->atom.k_f.transfer_count();
  sim->run(50);
  // Forces live on the device throughout: zeroed there, computed there,
  // integrated there. Reverse comm is off (full list), so f never moves
  // except for rare neighbor rebuilds.
  const std::size_t f_moves = sim->atom.k_f.transfer_count() - before_f;
  EXPECT_LE(f_moves, 2u);

  // Contrast: a host fix forces per-step migrations of v and f.
  auto mixed = make_lj_system(2, 0.8442, 0.0, "lj/cut/kk", 1.0);
  Input in2(*mixed);
  in2.line("fix 1 all nve");  // host integrator + device pair
  in2.line("thermo 100");
  mixed->setup();
  const std::size_t before_mixed = mixed->atom.k_f.transfer_count();
  mixed->run(50);
  EXPECT_GE(mixed->atom.k_f.transfer_count() - before_mixed, 50u);
}

}  // namespace
}  // namespace mlk
