// Tests for the Appendix A extension mechanisms: the external-potential
// callback style, per-atom bispectrum descriptors, and the device Langevin.
#include <gtest/gtest.h>

#include <cmath>

#include "pair/pair_external.hpp"
#include "pair/pair_lj_cut.hpp"
#include "snap/compute_snap_bispectrum.hpp"
#include "snap/pair_snap.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;
using testing::total_pe;

/// LJ implemented through the external-callback interface.
ExternalPotential lj_callback(double eps, double sigma, double rc) {
  return [=](int, const std::vector<ExternalNeighbor>& nbrs, double* fij) {
    double e = 0.0;
    const double rcsq = rc * rc;
    const double lj1 = 48.0 * eps * std::pow(sigma, 12.0);
    const double lj2 = 24.0 * eps * std::pow(sigma, 6.0);
    const double lj3 = 4.0 * eps * std::pow(sigma, 12.0);
    const double lj4 = 4.0 * eps * std::pow(sigma, 6.0);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const double rsq = nbrs[k].r * nbrs[k].r;
      if (rsq >= rcsq) {
        for (int d = 0; d < 3; ++d) fij[3 * k + std::size_t(d)] = 0.0;
        continue;
      }
      e += 0.5 * PairLJCut::pair_energy(rsq, lj3, lj4);  // half per side
      // dE_i/d(r_j) with E_i owning half the pair energy... the full pair
      // force is applied from each side's action/reaction in PairExternal,
      // so the callback reports half the pair force.
      const double fpair = 0.5 * PairLJCut::pair_force(rsq, lj1, lj2);
      fij[3 * k + 0] = -fpair * nbrs[k].dx;
      fij[3 * k + 1] = -fpair * nbrs[k].dy;
      fij[3 * k + 2] = -fpair * nbrs[k].dz;
    }
    return e;
  };
}

TEST(PairExternal, WrappedLJMatchesNative) {
  auto ref = make_lj_system(3, 0.8442, 0.05, "lj/cut");
  const double e_ref = total_pe(*ref);
  ref->atom.sync<kk::Host>(F_MASK);

  auto sim = make_lj_system(3, 0.8442, 0.05, "lj/cut");  // same config
  auto ext = std::make_unique<PairExternal>();
  ext->set_model(lj_callback(1.0, 1.0, 2.5), 2.5);
  sim->pair = std::move(ext);
  const double e = total_pe(*sim);

  EXPECT_NEAR(e, e_ref, 1e-9 * std::abs(e_ref));
  sim->atom.sync<kk::Host>(F_MASK);
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_NEAR(sim->atom.k_f.h_view(std::size_t(i), std::size_t(d)),
                  ref->atom.k_f.h_view(std::size_t(i), std::size_t(d)), 1e-9);
}

TEST(PairExternal, RequiresModel) {
  init_all();
  auto sim = make_lj_system(2);
  sim->pair = StyleRegistry::instance().create_pair("external");
  EXPECT_THROW(sim->setup(), Error);
}

TEST(SnapDescriptors, PerAtomRowsMatchPairStyleBispectrum) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 3 3 3 jitter 0.03 5511");
  in.line("mass 1 183.84");
  in.line("pair_style snap");
  in.line("pair_coeff * * 4.7 6 7771");
  sim->thermo.print = false;
  total_pe(*sim);

  auto* pair = dynamic_cast<PairSNAP*>(sim->pair.get());
  ComputeSnapBispectrum desc(4.7, 6);
  desc.evaluate(*sim);
  ASSERT_EQ(desc.ncoeff(), pair->sna()->ncoeff());
  const auto& b_pair = pair->last_bispectrum();
  const auto& b_desc = desc.descriptors();
  ASSERT_EQ(b_pair.size(), b_desc.size());
  for (std::size_t k = 0; k < b_desc.size(); ++k)
    EXPECT_NEAR(b_desc[k], b_pair[k], 1e-10) << "entry " << k;
}

TEST(SnapDescriptors, IdenticalEnvironmentsGiveIdenticalRows) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units metal");
  in.line("lattice bcc 3.16");
  in.line("create_atoms 3 3 3");  // perfect crystal: all sites equivalent
  in.line("mass 1 183.84");
  in.line("pair_style snap");
  in.line("pair_coeff * * 4.7 6 7771");
  sim->thermo.print = false;
  total_pe(*sim);
  ComputeSnapBispectrum desc(4.7, 6);
  desc.evaluate(*sim);
  const int nc = desc.ncoeff();
  for (localint i = 1; i < sim->atom.nlocal; ++i)
    for (int c = 0; c < nc; ++c)
      EXPECT_NEAR(desc.descriptors()[std::size_t(i) * std::size_t(nc) + std::size_t(c)],
                  desc.descriptors()[std::size_t(c)], 1e-10);
}

TEST(LangevinKokkos, HeatsTowardTargetOnDevice) {
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut/kk", 0.1);
  Input in(*sim);
  in.line("fix 1 all nve/kk");
  in.line("fix 2 all langevin/kk 2.0 0.5 9281");
  in.line("thermo 100");
  in.line("run 400");
  EXPECT_GT(sim->thermo.rows().back().temp, 1.0);
}

TEST(LangevinKokkos, HostAndDeviceSpacesAgreeExactly) {
  // Counter-based RNG: the stochastic force is a pure function of
  // (seed, tag, step), so host- and device-space runs produce identical
  // trajectories — a stronger statement than the paper needs, enabled by
  // the stateless-kick design.
  auto run_one = [&](const std::string& fix_sfx) {
    auto sim = make_lj_system(2, 0.8442, 0.0, "lj/cut", 0.5);
    Input in(*sim);
    in.line("fix 1 all nve");
    in.line("fix 2 all langevin" + fix_sfx + " 1.5 0.5 777");
    in.line("thermo 20");
    in.line("run 20");
    return sim->thermo.rows().back().etotal;
  };
  EXPECT_DOUBLE_EQ(run_one("/kk/host"), run_one("/kk/device"));
}

}  // namespace
}  // namespace mlk
