#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "kokkos/team.hpp"

namespace {

TEST(Team, LeagueCoversEveryTeamOnce) {
  const std::size_t league = 257;
  std::vector<std::atomic<int>> hits(league);
  kk::parallel_for("team::cover", kk::TeamPolicy<kk::Device>(league, 64, 8),
                   [&](const kk::TeamMember& m) {
                     hits[m.league_rank()].fetch_add(1);
                     EXPECT_EQ(m.league_size(), league);
                     EXPECT_EQ(m.team_size(), 64);
                     EXPECT_EQ(m.vector_length(), 8);
                   });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, NestedThreadRangeSerialWithinTeam) {
  std::atomic<long> total{0};
  kk::parallel_for("team::nested", kk::TeamPolicy<kk::Device>(10, 32),
                   [&](const kk::TeamMember& m) {
                     long local = 0;
                     kk::parallel_reduce(
                         kk::TeamThreadRange(m, 100),
                         [&](std::size_t i, long& s) { s += long(i); }, local);
                     total.fetch_add(local);
                   });
  EXPECT_EQ(total.load(), 10L * (99L * 100L / 2L));
}

TEST(Team, VectorRangeWithBounds) {
  long sum = 0;
  kk::parallel_for("team::vec", kk::TeamPolicy<kk::Host>(1, 1, 16),
                   [&](const kk::TeamMember& m) {
                     kk::parallel_for(kk::ThreadVectorRange(m, 5, 10),
                                      [&](std::size_t i) { sum += long(i); });
                   });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(Team, ScratchIsUsablePerTeam) {
  const std::size_t league = 50;
  std::vector<double> results(league, 0.0);
  auto policy =
      kk::TeamPolicy<kk::Device>(league, 32).set_scratch_size(64 * sizeof(double));
  kk::parallel_for("team::scratch", policy, [&](const kk::TeamMember& m) {
    double* s = m.team_scratch<double>(64);
    ASSERT_NE(s, nullptr);
    for (int k = 0; k < 64; ++k) s[k] = double(m.league_rank());
    double acc = 0.0;
    for (int k = 0; k < 64; ++k) acc += s[k];
    results[m.league_rank()] = acc;
  });
  for (std::size_t t = 0; t < league; ++t)
    EXPECT_DOUBLE_EQ(results[t], 64.0 * double(t));
}

TEST(Team, ScratchOverSubscriptionReturnsNull) {
  auto policy = kk::TeamPolicy<kk::Host>(1, 1).set_scratch_size(16);
  kk::parallel_for("team::scratch_over", policy, [&](const kk::TeamMember& m) {
    double* a = m.team_scratch<double>(2);  // 16 bytes: fits exactly
    EXPECT_NE(a, nullptr);
    double* b = m.team_scratch<double>(1);  // over budget
    EXPECT_EQ(b, nullptr);
  });
}

TEST(Team, LeagueReduction) {
  double total = 0.0;
  kk::parallel_reduce("team::reduce", kk::TeamPolicy<kk::Device>(100, 32),
                      [&](const kk::TeamMember& m, double& sum) {
                        sum += double(m.league_rank());
                      },
                      total);
  EXPECT_DOUBLE_EQ(total, 99.0 * 100.0 / 2.0);
}

TEST(Team, TeamScanExclusivePrefix) {
  std::vector<int> prefix(16, -1);
  kk::parallel_for("team::scan", kk::TeamPolicy<kk::Host>(1, 1),
                   [&](const kk::TeamMember& m) {
                     int total = 0;
                     kk::parallel_scan(
                         kk::TeamThreadRange(m, 16),
                         [&](std::size_t i, int& update, bool final) {
                           if (final) prefix[i] = update;
                           update += int(i) + 1;
                         },
                         total);
                     EXPECT_EQ(total, 16 * 17 / 2);
                   });
  int expect = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(prefix[i], expect);
    expect += int(i) + 1;
  }
}

TEST(Team, SingleExecutesOnce) {
  int count = 0;
  kk::parallel_for("team::single", kk::TeamPolicy<kk::Host>(3, 8),
                   [&](const kk::TeamMember& m) {
                     kk::single(m, [&] { ++count; });
                   });
  EXPECT_EQ(count, 3);
}

}  // namespace
