// Batch-server tests (docs/SERVER.md): queue semantics, the per-job
// isolation guarantee (bitwise-identical trajectories run alone vs
// co-scheduled vs restarted from a job-set checkpoint mid-batch), cross-job
// fused dispatch, scheduling fairness, failure containment, the jobset
// manifest round trip, and the multi-Simulation static-state audit.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <thread>

#include "minilammps.hpp"
#include "server/job_queue.hpp"
#include "server/jobset_io.hpp"
#include "server/scheduler.hpp"

namespace mlk {
namespace {

namespace fs = std::filesystem;
using namespace mlk::server;

/// Fresh scratch directory per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() / ("mlk_server_" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string file(const std::string& n) const { return (path / n).string(); }
  fs::path path;
};

/// The server workload: LJ melt on a jittered fcc lattice, device (kk)
/// pair style so the force phase is batchable, `neigh_modify every 10
/// check no` so the rebuild schedule is deterministic and checkpoint steps
/// (multiples of 10) coincide with natural rebuilds.
std::vector<std::string> melt_lines(int cells, double temp,
                                    double cutoff = 2.5,
                                    unsigned vseed = 87287) {
  const std::string c = std::to_string(cells);
  return {
      "units lj",
      "lattice fcc 0.8442",
      "create_atoms " + c + " " + c + " " + c + " jitter 0.05 78123",
      "mass 1 1.0",
      "velocity all create " + std::to_string(temp) + " " +
          std::to_string(vseed),
      "suffix kk",
      "pair_style lj/cut " + std::to_string(cutoff),
      "pair_coeff * * 1.0 1.0",
      "neighbor 0.3 bin",
      "neigh_modify every 10 check no",
      "fix 1 all nve",
      "thermo 10",
  };
}

JobSpec melt_job(const std::string& name, int cells, double temp,
                 bigint steps, double cutoff = 2.5, unsigned vseed = 87287) {
  JobSpec spec;
  spec.name = name;
  spec.setup = melt_lines(cells, temp, cutoff, vseed);
  spec.steps = steps;
  return spec;
}

struct SoloRun {
  std::vector<ThermoRow> rows;
  std::vector<double> state_xv;
};

/// Reference trajectory: same script driven by the plain single-Simulation
/// Verlet loop, optionally with the same periodic-checkpoint schedule the
/// server applies (checkpoint steps force rebuilds, so the schedule is part
/// of the trajectory).
SoloRun solo_run(const std::vector<std::string>& setup, bigint steps,
                 bigint restart_every = 0,
                 const std::string& restart_base = "") {
  init_all();
  Simulation sim;
  Input in(sim);
  sim.thermo.print = false;
  for (const std::string& line : setup) in.line(line);
  sim.restart_every = restart_every;
  sim.restart_base = restart_base;
  sim.run(steps);
  SoloRun out;
  out.rows = sim.thermo.rows();
  out.state_xv = capture_state(sim);
  return out;
}

/// Exact (bitwise-value) comparison of recorded thermo rows from
/// `from_step` on: the co-scheduled/resumed run must reproduce every row
/// the reference recorded in that range, with identical values.
void expect_rows_identical(const std::vector<ThermoRow>& want_rows,
                           const std::vector<ThermoRow>& got_rows,
                           bigint from_step = 0) {
  std::map<bigint, ThermoRow> want;
  for (const ThermoRow& r : want_rows)
    if (r.step >= from_step) want[r.step] = r;
  std::size_t matched = 0;
  for (const ThermoRow& r : got_rows) {
    if (r.step < from_step) continue;
    const auto it = want.find(r.step);
    ASSERT_NE(it, want.end()) << "unexpected thermo step " << r.step;
    EXPECT_EQ(r.temp, it->second.temp) << "step " << r.step;
    EXPECT_EQ(r.pe, it->second.pe) << "step " << r.step;
    EXPECT_EQ(r.ke, it->second.ke) << "step " << r.step;
    EXPECT_EQ(r.etotal, it->second.etotal) << "step " << r.step;
    EXPECT_EQ(r.press, it->second.press) << "step " << r.step;
    ++matched;
  }
  EXPECT_EQ(matched, want.size()) << "thermo steps missing";
}

void expect_state_identical(const std::vector<double>& a,
                            const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "packed state index " << i;
}

// ---------------------------------------------------------------- job queue

TEST(ServerQueue, FifoIdsCloseAndSnapshot) {
  init_all();
  JobQueue q;
  EXPECT_EQ(q.submit(melt_job("a", 3, 1.0, 5)), 0);
  EXPECT_EQ(q.submit(melt_job("b", 3, 1.2, 5)), 1);
  EXPECT_EQ(q.submit(melt_job("c", 3, 1.4, 5)), 2);
  EXPECT_EQ(q.pending(), 3u);

  const auto snap = q.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, 0);
  EXPECT_EQ(snap[2].second.name, "c");

  auto first = q.pop(/*wait=*/false);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, 0);
  EXPECT_EQ(first->spec.name, "a");
  EXPECT_EQ(q.pending(), 2u);

  EXPECT_FALSE(q.closed());
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_THROW(q.submit(melt_job("d", 3, 1.0, 5)), std::exception);

  // Closed queue still drains what was submitted before close().
  EXPECT_EQ(q.pop(/*wait=*/true)->id, 1);
  EXPECT_EQ(q.pop(/*wait=*/false)->id, 2);
  EXPECT_EQ(q.pop(/*wait=*/true), nullptr);
}

TEST(ServerQueue, FromScriptSplitsRunLines) {
  const JobSpec spec = JobSpec::from_script(
      "s", "units lj\nrun 50\npair_style lj/cut 2.5\n\nrun 25\n");
  EXPECT_EQ(spec.steps, 75);
  ASSERT_EQ(spec.setup.size(), 2u);
  EXPECT_EQ(spec.setup[0], "units lj");
  EXPECT_EQ(spec.setup[1], "pair_style lj/cut 2.5");
}

// -------------------------------------------------------------------- smoke

TEST(ServerSmoke, FourJobsCompleteWithConservedEnergy) {
  init_all();
  std::vector<JobSpec> specs = {
      melt_job("j0", 3, 1.0, 30), melt_job("j1", 3, 1.44, 30),
      melt_job("j2", 4, 0.8, 30), melt_job("j3", 3, 2.0, 30, 3.0)};
  SchedulerConfig cfg;
  cfg.max_resident = 4;
  const auto results = run_jobs(specs, cfg);

  ASSERT_EQ(results.size(), 4u);
  for (const JobResult& r : results) {
    EXPECT_EQ(r.state, JobState::Completed) << r.name << ": " << r.error;
    EXPECT_EQ(r.steps_done, 30);
    ASSERT_GE(r.thermo.size(), 2u) << r.name;
    EXPECT_EQ(r.thermo.front().step, 0);
    EXPECT_EQ(r.thermo.back().step, 30);
    // NVE melt over 30 steps: total energy is conserved to integrator
    // accuracy (loose bound — correctness is the bitwise tests' job).
    const double e0 = r.thermo.front().etotal;
    EXPECT_NEAR(r.thermo.back().etotal, e0, 1e-2 * std::max(1.0, std::abs(e0)))
        << r.name;
  }
}

// ---------------------------------------------------- isolation (tentpole)

// Each job's trajectory must be bitwise identical whether it runs alone or
// co-scheduled with different neighbors — with batching and fan-out on, so
// the fused zero+force launch and the pooled instances are both on trial.
TEST(ServerIsolation, BitwiseIdenticalSoloVsCoScheduled) {
  init_all();
  // Different sizes, temperatures and cutoffs: neighbors differ in shape,
  // and the mixed cutoffs exercise per-slice (not per-batch) coefficients.
  const std::vector<JobSpec> specs = {
      melt_job("small-hot", 3, 1.44, 40),
      melt_job("small-cold", 3, 0.7, 40, 2.5, 12345),
      melt_job("large", 4, 1.0, 40),
      melt_job("wide-cutoff", 3, 1.2, 40, 3.0)};

  std::vector<SoloRun> solo;
  for (const JobSpec& s : specs) solo.push_back(solo_run(s.setup, s.steps));

  JobQueue queue;
  for (JobSpec s : specs) queue.submit(std::move(s));
  queue.close();
  SchedulerConfig cfg;
  cfg.max_resident = 4;
  Scheduler sched(queue, cfg);
  sched.run();
  const auto& results = sched.results();

  // The cohort must actually have fused: eflag/rebuild steps (multiples of
  // 10) run solo, everything else batches.
  EXPECT_GT(sched.stats().fused_launches, 0);
  EXPECT_GT(sched.stats().fused_jobs, sched.stats().fused_launches);

  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const JobResult& r = results[i];
    ASSERT_EQ(r.state, JobState::Completed) << r.name << ": " << r.error;
    expect_rows_identical(solo[i].rows, r.thermo);
    expect_state_identical(solo[i].state_xv, r.state_xv);
  }
}

// Same guarantee with fan-out off (sequential phases on the scheduler
// thread) — scheduling policy must not be load-bearing for correctness.
TEST(ServerIsolation, BitwiseIdenticalWithoutFanout) {
  init_all();
  const std::vector<JobSpec> specs = {melt_job("a", 3, 1.44, 25),
                                      melt_job("b", 3, 0.9, 25)};
  std::vector<SoloRun> solo;
  for (const JobSpec& s : specs) solo.push_back(solo_run(s.setup, s.steps));

  SchedulerConfig cfg;
  cfg.max_resident = 2;
  cfg.fanout = false;
  const auto results = run_jobs(specs, cfg);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(results[i].state, JobState::Completed) << results[i].error;
    expect_rows_identical(solo[i].rows, results[i].thermo);
    expect_state_identical(solo[i].state_xv, results[i].state_xv);
  }
}

// Restart-mid-batch: drain the scheduler partway (max_rounds), restore the
// job set from the manifest, finish it, and require final state bitwise
// identical to solo runs under the same checkpoint schedule.
TEST(ServerIsolation, BitwiseIdenticalAfterRestartMidBatch) {
  init_all();
  ScratchDir dir("restart_mid_batch");
  const std::string base = dir.file("set");
  const bigint kSteps = 60, kEvery = 20, kDrainRounds = 45;

  const std::vector<JobSpec> specs = {melt_job("r0", 3, 1.44, kSteps),
                                      melt_job("r1", 3, 0.8, kSteps),
                                      melt_job("r2", 3, 1.1, kSteps, 3.0)};

  // Solo references advance with the identical checkpoint schedule —
  // checkpoint steps force neighbor rebuilds, so every 20 steps is part of
  // the trajectory definition (here it coincides with the pinned every-10
  // rebuild cadence anyway).
  std::vector<SoloRun> solo;
  for (std::size_t i = 0; i < specs.size(); ++i)
    solo.push_back(solo_run(specs[i].setup, kSteps, kEvery,
                            dir.file("solo" + std::to_string(i))));

  // Phase 1: run the batch, interrupted after kDrainRounds rounds.
  {
    SchedulerConfig cfg;
    cfg.max_resident = 3;
    cfg.checkpoint_every = kEvery;
    cfg.checkpoint_base = base;
    cfg.max_rounds = kDrainRounds;
    const auto partial = run_jobs(specs, cfg);
    ASSERT_EQ(partial.size(), 3u);
    for (const JobResult& r : partial) {
      EXPECT_EQ(r.state, JobState::Running) << r.name << ": " << r.error;
      EXPECT_EQ(r.steps_done, kDrainRounds);
    }
  }

  // Phase 2: restore from the manifest and run to completion.
  const std::vector<JobSpec> restored = restore_jobset(base);
  ASSERT_EQ(restored.size(), 3u);
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored[i].name, specs[i].name);
    EXPECT_FALSE(restored[i].resume_from.empty());
    EXPECT_FALSE(restored[i].restore.empty());
  }
  SchedulerConfig cfg;
  cfg.max_resident = 3;
  cfg.checkpoint_every = kEvery;
  cfg.checkpoint_base = base;
  const auto results = run_jobs(restored, cfg);

  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const JobResult& r = results[i];
    ASSERT_EQ(r.state, JobState::Completed) << r.name << ": " << r.error;
    EXPECT_EQ(r.steps_done, kSteps);
    // Rows recorded after the resume point (the newest checkpoint is at
    // step 40) must match the straight-through reference bitwise.
    expect_rows_identical(solo[i].rows, r.thermo, /*from_step=*/50);
    expect_state_identical(solo[i].state_xv, r.state_xv);
  }

  // The manifest now records the whole set as completed.
  for (const ManifestEntry& e : read_manifest(base)) {
    EXPECT_EQ(e.state, JobState::Completed) << e.name;
    EXPECT_EQ(e.steps_done, kSteps) << e.name;
  }
  EXPECT_TRUE(restore_jobset(base).empty());
}

// ----------------------------------------------------------------- fairness

// Lockstep rounds give every resident job one step per round, so a long job
// cannot starve short ones: with 2 slots, all shorts must finish (and free
// their slots for each other) while the long job is still running.
TEST(ServerFairness, LongJobCannotStarveShortJobs) {
  init_all();
  std::vector<JobSpec> specs = {melt_job("long", 3, 1.44, 80)};
  for (int i = 0; i < 3; ++i)
    specs.push_back(melt_job("short" + std::to_string(i), 3, 1.0, 10));

  SchedulerConfig cfg;
  cfg.max_resident = 2;
  const auto results = run_jobs(specs, cfg);

  ASSERT_EQ(results.size(), 4u);
  const JobResult& long_job = results[0];
  EXPECT_EQ(long_job.name, "long");
  EXPECT_EQ(long_job.state, JobState::Completed) << long_job.error;
  EXPECT_EQ(long_job.steps_done, 80);
  EXPECT_EQ(long_job.finish_order, 3);  // strictly last
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].state, JobState::Completed) << results[i].error;
    EXPECT_EQ(results[i].steps_done, 10);
    EXPECT_LT(results[i].finish_order, long_job.finish_order);
  }
}

// -------------------------------------------------------- failure isolation

TEST(ServerFailure, BadScriptFailsOnlyThatJob) {
  init_all();
  JobSpec bad;
  bad.name = "bad";
  bad.setup = {"units lj", "pair_style no/such/style 2.5"};
  bad.steps = 10;

  const std::vector<JobSpec> specs = {melt_job("good0", 3, 1.0, 15), bad,
                                      melt_job("good1", 3, 1.2, 15)};
  SchedulerConfig cfg;
  cfg.max_resident = 3;
  const auto results = run_jobs(specs, cfg);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].state, JobState::Completed) << results[0].error;
  EXPECT_EQ(results[1].state, JobState::Failed);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_EQ(results[2].state, JobState::Completed) << results[2].error;
}

// A fault armed mid-run (fault_inject, the PR-1 harness) throws inside
// step_begin on the job's instance; the fence maps it to that job alone and
// the cohort keeps going.
TEST(ServerFailure, MidRunFaultIsContained) {
  init_all();
  JobSpec faulty = melt_job("faulty", 3, 1.0, 30);
  faulty.setup.push_back("fault_inject 7");

  const std::vector<JobSpec> specs = {faulty, melt_job("survivor", 3, 1.2, 30)};
  const SoloRun solo = solo_run(specs[1].setup, specs[1].steps);

  SchedulerConfig cfg;
  cfg.max_resident = 2;
  const auto results = run_jobs(specs, cfg);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].state, JobState::Failed);
  EXPECT_FALSE(results[0].error.empty());
  ASSERT_EQ(results[1].state, JobState::Completed) << results[1].error;
  EXPECT_EQ(results[1].steps_done, 30);
  // The survivor's trajectory is unperturbed by its neighbor's death.
  expect_rows_identical(solo.rows, results[1].thermo);
  expect_state_identical(solo.state_xv, results[1].state_xv);
}

// ----------------------------------------------------------- jobset manifest

TEST(ServerManifest, RoundTripPreservesEntries) {
  ScratchDir dir("manifest");
  const std::string base = dir.file("set");
  std::vector<ManifestEntry> entries(2);
  entries[0] = {0, "alpha", JobState::Completed, 50, 50,
                {"units lj", "pair_style lj/cut 2.5"}, base + ".job0"};
  entries[1] = {1, "beta \"quoted\"", JobState::Running, 100, 40,
                {"units lj"}, base + ".job1"};
  write_manifest(base, entries);

  const auto back = read_manifest(base);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].id, 0);
  EXPECT_EQ(back[0].name, "alpha");
  EXPECT_EQ(back[0].state, JobState::Completed);
  EXPECT_EQ(back[0].steps_total, 50);
  EXPECT_EQ(back[0].setup.size(), 2u);
  EXPECT_EQ(back[1].name, "beta \"quoted\"");
  EXPECT_EQ(back[1].state, JobState::Running);
  EXPECT_EQ(back[1].steps_done, 40);
  EXPECT_EQ(back[1].restart_base, base + ".job1");
}

TEST(ServerManifest, RestoreLinesDropsAtomCreatingCommands) {
  const auto kept = restore_lines(melt_lines(3, 1.44));
  for (const std::string& line : kept) {
    EXPECT_EQ(line.find("create_atoms"), std::string::npos) << line;
    EXPECT_EQ(line.find("velocity"), std::string::npos) << line;
    EXPECT_EQ(line.find("lattice"), std::string::npos) << line;
    EXPECT_EQ(line.find("mass"), std::string::npos) << line;
  }
  // Styles and neighbor policy must survive for non-serializing styles.
  auto has = [&](const std::string& word) {
    for (const std::string& line : kept)
      if (line.find(word) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(has("pair_style"));
  EXPECT_TRUE(has("pair_coeff"));
  EXPECT_TRUE(has("neigh_modify"));
  EXPECT_TRUE(has("fix"));
  EXPECT_TRUE(has("suffix"));
}

// ----------------------------------------------- multi-instance static audit

// Two Simulations built and run concurrently from plain threads must both
// produce the solo-run trajectory — regression for the static-state audit
// (style-registry init, observability env caches, QEq scratch).
TEST(ServerStatics, ConcurrentSimulationsMatchSolo) {
  init_all();
  const std::vector<std::string> script_a = melt_lines(3, 1.44);
  const std::vector<std::string> script_b = melt_lines(3, 0.8, 2.5, 424242);
  const SoloRun ref_a = solo_run(script_a, 15);
  const SoloRun ref_b = solo_run(script_b, 15);

  SoloRun got_a, got_b;
  std::thread ta([&] { got_a = solo_run(script_a, 15); });
  std::thread tb([&] { got_b = solo_run(script_b, 15); });
  ta.join();
  tb.join();

  expect_rows_identical(ref_a.rows, got_a.rows);
  expect_state_identical(ref_a.state_xv, got_a.state_xv);
  expect_rows_identical(ref_b.rows, got_b.rows);
  expect_state_identical(ref_b.state_xv, got_b.state_xv);
}

}  // namespace
}  // namespace mlk
