// Property tests on the SNAP mathematical core: Clebsch-Gordan identities,
// Wigner-U unitarity, and rotational invariance of the bispectrum.
#include <gtest/gtest.h>

#include <cmath>

#include "snap/sna.hpp"
#include "snap/sna_recursion.hpp"

namespace mlk::snap {
namespace {

TEST(Factorial, SmallValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
}

TEST(ClebschGordan, TrivialCoupling) {
  // j1=0 coupling: C(0 0 j m | j m) = 1.
  EXPECT_NEAR(clebsch_gordan(0, 0, 4, 2, 4, 2), 1.0, 1e-12);
  EXPECT_NEAR(clebsch_gordan(2, 2, 0, 0, 2, 2), 1.0, 1e-12);
}

TEST(ClebschGordan, KnownHalfIntegerValues) {
  // Two spin-1/2 -> triplet/singlet: C(1/2 1/2 1/2 -1/2 | 1 0) = 1/sqrt(2),
  // C(1/2 1/2 1/2 -1/2 | 0 0) = 1/sqrt(2) (doubled args: j=1 -> 1 etc).
  EXPECT_NEAR(clebsch_gordan(1, 1, 1, -1, 2, 0), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(clebsch_gordan(1, 1, 1, -1, 0, 0), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(clebsch_gordan(1, -1, 1, 1, 0, 0), -1.0 / std::sqrt(2.0), 1e-12);
  // Stretched state: C(j1 j1 j2 j2 | j1+j2 j1+j2) = 1.
  EXPECT_NEAR(clebsch_gordan(3, 3, 2, 2, 5, 5), 1.0, 1e-12);
}

TEST(ClebschGordan, SelectionRules) {
  EXPECT_DOUBLE_EQ(clebsch_gordan(2, 0, 2, 0, 5, 0), 0.0);  // parity
  EXPECT_DOUBLE_EQ(clebsch_gordan(2, 2, 2, 2, 2, 0), 0.0);  // m mismatch
  EXPECT_DOUBLE_EQ(clebsch_gordan(2, 0, 2, 0, 6, 0), 0.0);  // triangle
}

TEST(ClebschGordan, OrthogonalityInJ) {
  // sum_{m1,m2} C(j1 m1 j2 m2|j m) C(j1 m1 j2 m2|j' m) = delta_jj'.
  const int j1 = 4, j2 = 2;  // doubled: j1=2, j2=1 physically
  for (int j = j1 - j2; j <= j1 + j2; j += 2)
    for (int jp = j1 - j2; jp <= j1 + j2; jp += 2) {
      const int m = 0;
      double sum = 0.0;
      for (int m1 = -j1; m1 <= j1; m1 += 2) {
        const int m2 = m - m1;
        if (std::abs(m2) > j2) continue;
        sum += clebsch_gordan(j1, m1, j2, m2, j, m) *
               clebsch_gordan(j1, m1, j2, m2, jp, m);
      }
      EXPECT_NEAR(sum, j == jp ? 1.0 : 0.0, 1e-12)
          << "j=" << j << " j'=" << jp;
    }
}

TEST(SnaIndexes, CountsMatchClosedForms) {
  SnaIndexes idx;
  idx.build(6);
  // idxu_max = sum_{j=0}^{2J} (j+1)^2.
  int expect = 0;
  for (int j = 0; j <= 6; ++j) expect += (j + 1) * (j + 1);
  EXPECT_EQ(idx.idxu_max, expect);
  // Known SNAP coefficient counts: twojmax=6 -> 30 bispectrum components.
  EXPECT_EQ(idx.idxb_max, 30);
  SnaIndexes idx8;
  idx8.build(8);
  EXPECT_EQ(idx8.idxb_max, 55);  // twojmax=8 (2Jmax=8, Jmax=4)
}

TEST(WignerU, SingleNeighborRowsAreUnitary) {
  // For one neighbor, each row of u_j is a row of a unitary matrix:
  // sum_ma |u(j,ma,mb)|^2 == 1.
  SnaParams p;
  p.twojmax = 6;
  p.rcut = 3.0;
  p.switch_flag = false;  // isolate the raw matrices
  SNA sna(p);
  const double dr[3] = {0.7, -0.4, 1.1};
  const double r = std::sqrt(dr[0] * dr[0] + dr[1] * dr[1] + dr[2] * dr[2]);
  sna.zero_ui();
  sna.add_neighbor_ui(dr, r);
  // utot = identity (self) + u(neighbor); subtract the self part.
  const auto& idx = sna.idx();
  for (int j = 0; j <= p.twojmax; ++j) {
    const int base = idx.idxu_block[std::size_t(j)];
    for (int mb = 0; mb <= j; ++mb) {
      double norm = 0.0;
      for (int ma = 0; ma <= j; ++ma) {
        double re = sna.utot_r()[std::size_t(base + mb * (j + 1) + ma)];
        const double im = sna.utot_i()[std::size_t(base + mb * (j + 1) + ma)];
        if (ma == mb) re -= p.wself;
        norm += re * re + im * im;
      }
      EXPECT_NEAR(norm, 1.0, 1e-10) << "j=" << j << " mb=" << mb;
    }
  }
}

void rotate_z(double angle, double* v) {
  const double c = std::cos(angle), s = std::sin(angle);
  const double x = v[0], y = v[1];
  v[0] = c * x - s * y;
  v[1] = s * x + c * y;
}

void rotate_x(double angle, double* v) {
  const double c = std::cos(angle), s = std::sin(angle);
  const double y = v[1], z = v[2];
  v[1] = c * y - s * z;
  v[2] = s * y + c * z;
}

TEST(Bispectrum, RotationallyInvariant) {
  // The headline property of SNAP: B is invariant under any rigid rotation
  // of the neighborhood (hyperspherical harmonics transform unitarily and
  // the triple products are scalars).
  SnaParams p;
  p.twojmax = 6;
  p.rcut = 3.0;
  SNA sna(p);

  double neigh[5][3] = {{0.9, 0.1, -0.3},
                        {-0.5, 1.2, 0.4},
                        {0.2, -0.8, 1.0},
                        {-1.1, -0.6, -0.7},
                        {1.3, 0.9, 0.2}};

  auto bispectrum = [&](double pts[5][3]) {
    sna.zero_ui();
    for (int k = 0; k < 5; ++k) {
      const double r = std::sqrt(pts[k][0] * pts[k][0] +
                                 pts[k][1] * pts[k][1] + pts[k][2] * pts[k][2]);
      sna.add_neighbor_ui(pts[k], r);
    }
    sna.compute_zi();
    sna.compute_bi();
    return sna.blist();
  };

  const auto b_ref = bispectrum(neigh);
  ASSERT_EQ(int(b_ref.size()), sna.ncoeff());

  double rotated[5][3];
  for (int k = 0; k < 5; ++k)
    for (int d = 0; d < 3; ++d) rotated[k][d] = neigh[k][d];
  for (int k = 0; k < 5; ++k) {
    rotate_z(0.813, rotated[k]);
    rotate_x(-1.237, rotated[k]);
    rotate_z(2.02, rotated[k]);
  }
  const auto b_rot = bispectrum(rotated);

  double bnorm = 0.0;
  for (double b : b_ref) bnorm = std::max(bnorm, std::abs(b));
  ASSERT_GT(bnorm, 1e-6);  // non-degenerate neighborhood
  for (int c = 0; c < sna.ncoeff(); ++c)
    EXPECT_NEAR(b_rot[std::size_t(c)], b_ref[std::size_t(c)], 1e-9 * bnorm)
        << "component " << c;
}

TEST(Bispectrum, PermutationInvariant) {
  SnaParams p;
  p.twojmax = 4;
  p.rcut = 3.0;
  SNA sna(p);
  double a[3] = {0.9, 0.1, -0.3}, b[3] = {-0.5, 1.2, 0.4};
  const double ra = std::sqrt(0.9 * 0.9 + 0.1 * 0.1 + 0.3 * 0.3);
  const double rb = std::sqrt(0.5 * 0.5 + 1.2 * 1.2 + 0.4 * 0.4);

  sna.zero_ui();
  sna.add_neighbor_ui(a, ra);
  sna.add_neighbor_ui(b, rb);
  sna.compute_zi();
  sna.compute_bi();
  auto b12 = sna.blist();

  sna.zero_ui();
  sna.add_neighbor_ui(b, rb);
  sna.add_neighbor_ui(a, ra);
  sna.compute_zi();
  sna.compute_bi();
  auto b21 = sna.blist();

  for (int c = 0; c < sna.ncoeff(); ++c)
    EXPECT_NEAR(b12[std::size_t(c)], b21[std::size_t(c)], 1e-12);
}

TEST(Switching, SmoothlyDecaysToZeroAtCutoff) {
  SnaParams p;
  p.twojmax = 2;
  p.rcut = 2.0;
  SNA sna(p);
  EXPECT_DOUBLE_EQ(sna.sfac(0.0), 1.0);
  EXPECT_NEAR(sna.sfac(2.0), 0.0, 1e-15);
  EXPECT_NEAR(sna.sfac(1.0), 0.5, 1e-15);
  // dsfac is the derivative of sfac (central difference check).
  for (double r : {0.3, 0.9, 1.5, 1.9}) {
    const double h = 1e-6;
    const double num = (sna.sfac(r + h) - sna.sfac(r - h)) / (2 * h);
    EXPECT_NEAR(sna.dsfac(r), num, 1e-8);
  }
}

TEST(SyntheticBeta, DeterministicAndDecaying) {
  auto b1 = synthetic_beta(30, 7771);
  auto b2 = synthetic_beta(30, 7771);
  auto b3 = synthetic_beta(30, 1234);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(b1, b3);
  EXPECT_LT(std::abs(b1[29]), 0.1);
}

}  // namespace
}  // namespace mlk::snap
