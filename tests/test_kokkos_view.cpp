#include <gtest/gtest.h>

#include "kokkos/view.hpp"

namespace {

TEST(View, ExtentsAndSize) {
  kk::View<double, 3> v("v", 2, 3, 4);
  EXPECT_EQ(v.extent(0), 2u);
  EXPECT_EQ(v.extent(1), 3u);
  EXPECT_EQ(v.extent(2), 4u);
  EXPECT_EQ(v.size(), 24u);
  EXPECT_TRUE(v.is_allocated());
}

TEST(View, DefaultConstructedIsEmpty) {
  kk::View<int, 1> v;
  EXPECT_FALSE(v.is_allocated());
  EXPECT_EQ(v.size(), 0u);
}

TEST(View, ZeroInitialized) {
  kk::View<double, 2> v("v", 3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(v(i, j), 0.0);
}

TEST(View, LayoutRightIsRowMajor) {
  kk::View<int, 2, kk::LayoutRight> v("v", 2, 3);
  v(0, 0) = 1;
  v(0, 1) = 2;
  v(1, 0) = 10;
  // Row-major: consecutive second index is adjacent in memory.
  EXPECT_EQ(v.data()[0], 1);
  EXPECT_EQ(v.data()[1], 2);
  EXPECT_EQ(v.data()[3], 10);
}

TEST(View, LayoutLeftIsColumnMajor) {
  kk::View<int, 2, kk::LayoutLeft> v("v", 2, 3);
  v(0, 0) = 1;
  v(1, 0) = 2;
  v(0, 1) = 10;
  // Column-major: consecutive first index is adjacent in memory.
  EXPECT_EQ(v.data()[0], 1);
  EXPECT_EQ(v.data()[1], 2);
  EXPECT_EQ(v.data()[2], 10);
}

TEST(View, SharedOwnership) {
  kk::View<double, 1> a("a", 5);
  kk::View<double, 1> b = a;  // shallow copy, same allocation
  b(2) = 7.0;
  EXPECT_DOUBLE_EQ(a(2), 7.0);
  EXPECT_EQ(a.data(), b.data());
}

TEST(View, DeepCopyAcrossLayouts) {
  kk::View<double, 2, kk::LayoutRight> h("h", 3, 4);
  kk::View<double, 2, kk::LayoutLeft> d("d", 3, 4);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) h(i, j) = double(10 * i + j);
  kk::deep_copy(d, h);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(d(i, j), 10.0 * i + j);
  // Memory order differs even though logical contents match.
  EXPECT_DOUBLE_EQ(h.data()[1], 1.0);   // h(0,1)
  EXPECT_DOUBLE_EQ(d.data()[1], 10.0);  // d(1,0)
}

TEST(View, FillAndScalarDeepCopy) {
  kk::View<double, 1> v("v", 10);
  kk::deep_copy(v, 3.5);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(v(i), 3.5);
}

TEST(View, ResizePreserveGrows) {
  kk::View<double, 2> v("v", 2, 3);
  v(0, 0) = 1.0;
  v(1, 2) = 6.0;
  v.resize_preserve(5);
  EXPECT_EQ(v.extent(0), 5u);
  EXPECT_EQ(v.extent(1), 3u);
  EXPECT_DOUBLE_EQ(v(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(v(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(v(4, 0), 0.0);
}

TEST(View, ResizePreserveShrinks) {
  kk::View<double, 1> v("v", 4);
  for (std::size_t i = 0; i < 4; ++i) v(i) = double(i);
  v.resize_preserve(2);
  EXPECT_EQ(v.extent(0), 2u);
  EXPECT_DOUBLE_EQ(v(1), 1.0);
}

TEST(View, ReallocDiscardsContents) {
  kk::View<double, 1> v("v", 3);
  v(0) = 9.0;
  v.realloc(6);
  EXPECT_EQ(v.extent(0), 6u);
  EXPECT_DOUBLE_EQ(v(0), 0.0);
}

TEST(View, Rank4RoundTrip) {
  kk::View<float, 4, kk::LayoutLeft> v("v", 2, 2, 2, 2);
  v(1, 0, 1, 0) = 5.0f;
  EXPECT_FLOAT_EQ(v(1, 0, 1, 0), 5.0f);
  EXPECT_EQ(v.size(), 16u);
}

TEST(View, SpaceDefaultLayouts) {
  static_assert(
      std::is_same_v<kk::Host::default_layout, kk::LayoutRight>);
  static_assert(std::is_same_v<kk::Device::default_layout, kk::LayoutLeft>);
  kk::View2D<double, kk::Device> d("d", 2, 2);
  kk::View2D<double, kk::Host> h("h", 2, 2);
  d(1, 0) = 1.0;
  h(0, 1) = 1.0;
  EXPECT_DOUBLE_EQ(d.data()[1], 1.0);  // first index fastest on device
  EXPECT_DOUBLE_EQ(h.data()[1], 1.0);  // last index fastest on host
}

}  // namespace
