// Checkpoint/restart subsystem tests: binary format round-trips, CRC
// rejection of torn files, RNG-stream serialization, the bitwise-identical
// resume guarantee (serial + multi-rank, plain + kk styles), and the fault
// injection / recovery harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>

#include "io/binary_io.hpp"
#include "io/fault.hpp"
#include "io/restart.hpp"
#include "io/restart_reader.hpp"
#include "io/restart_writer.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace mlk {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test; removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path(fs::temp_directory_path() / ("mlk_restart_" + name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string file(const std::string& n) const { return (path / n).string(); }
  fs::path path;
};

/// The melt workload of the acceptance criteria: LJ fcc, jittered, nve.
/// `neigh_modify every 10 check no` pins the rebuild schedule so checkpoint
/// steps (multiples of 50/100) coincide with natural rebuilds — the regime
/// where checkpointing is bitwise-transparent to the writer run.
void melt_script(Simulation& sim, Input& in, const std::string& suffix = "") {
  sim.thermo.print = false;
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 4 4 4 jitter 0.05 78123");
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  if (!suffix.empty()) in.line("suffix " + suffix);
  in.line("pair_style lj/cut 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  in.line("neighbor 0.3 bin");
  in.line("neigh_modify every 10 check no");
  in.line("fix 1 all nve");
  in.line("thermo 10");
}

struct AtomState {
  double x[3], v[3], f[3];
};

std::map<tagint, AtomState> snapshot(Simulation& sim) {
  Atom& a = sim.atom;
  a.sync<kk::Host>(X_MASK | V_MASK | F_MASK | TAG_MASK);
  std::map<tagint, AtomState> out;
  for (localint i = 0; i < a.nlocal; ++i) {
    AtomState s;
    for (std::size_t d = 0; d < 3; ++d) {
      s.x[d] = a.k_x.h_view(std::size_t(i), d);
      s.v[d] = a.k_v.h_view(std::size_t(i), d);
      s.f[d] = a.k_f.h_view(std::size_t(i), d);
    }
    out[a.k_tag.h_view(std::size_t(i))] = s;
  }
  return out;
}

/// Exact (bitwise-value) comparison of two per-tag snapshots.
void expect_identical(const std::map<tagint, AtomState>& a,
                      const std::map<tagint, AtomState>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [tag, sa] : a) {
    const auto it = b.find(tag);
    ASSERT_NE(it, b.end()) << "tag " << tag << " missing";
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(sa.x[d], it->second.x[d]) << "x tag=" << tag << " d=" << d;
      EXPECT_EQ(sa.v[d], it->second.v[d]) << "v tag=" << tag << " d=" << d;
      EXPECT_EQ(sa.f[d], it->second.f[d]) << "f tag=" << tag << " d=" << d;
    }
  }
}

/// Exact comparison of thermo rows from `from_step` on.
void expect_rows_identical(const std::vector<ThermoRow>& straight,
                           const std::vector<ThermoRow>& resumed,
                           bigint from_step) {
  std::map<bigint, ThermoRow> want;
  for (const auto& r : straight)
    if (r.step >= from_step) want[r.step] = r;
  std::size_t matched = 0;
  for (const auto& r : resumed) {
    const auto it = want.find(r.step);
    ASSERT_NE(it, want.end()) << "unexpected thermo step " << r.step;
    EXPECT_EQ(r.temp, it->second.temp) << "step " << r.step;
    EXPECT_EQ(r.pe, it->second.pe) << "step " << r.step;
    EXPECT_EQ(r.ke, it->second.ke) << "step " << r.step;
    EXPECT_EQ(r.etotal, it->second.etotal) << "step " << r.step;
    EXPECT_EQ(r.press, it->second.press) << "step " << r.step;
    ++matched;
  }
  EXPECT_EQ(matched, want.size()) << "thermo steps missing after resume";
}

// ---------------------------------------------------------------- binary io

TEST(BinaryIO, ScalarStringVectorRoundTrip) {
  io::BinaryWriter w;
  w.put(std::int64_t(-42));
  w.put(3.5);
  w.put_string("lj/cut");
  w.put_vector(std::vector<double>{1.0, 2.0, 3.0});
  io::BinaryWriter nested;
  nested.put(std::int32_t(7));
  w.put_blob(nested);

  io::BinaryReader r(w.bytes());
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.get<double>(), 3.5);
  EXPECT_EQ(r.get_string(), "lj/cut");
  EXPECT_EQ(r.get_vector<double>(), (std::vector<double>{1.0, 2.0, 3.0}));
  io::BinaryReader blob = r.get_blob();
  EXPECT_EQ(blob.get<std::int32_t>(), 7);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BinaryIO, TruncatedReadThrows) {
  io::BinaryWriter w;
  w.put(std::int32_t(1));
  io::BinaryReader r(w.bytes());
  EXPECT_THROW(r.get<double>(), Error);
}

TEST(BinaryIO, Crc32KnownValue) {
  // The canonical IEEE CRC-32 check value.
  EXPECT_EQ(io::crc32("123456789", 9), 0xCBF43926u);
}

// ------------------------------------------------------------ RanPark state

TEST(RanParkState, AccessorsRoundTripMidStream) {
  RanPark rng(12345);
  // An odd number of gaussians leaves the Marsaglia cache loaded — the case
  // reset(seed) silently discards.
  for (int i = 0; i < 7; ++i) rng.gaussian();
  const RanPark::State s = rng.state();

  std::vector<double> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(rng.gaussian());
  for (int i = 0; i < 8; ++i) expect.push_back(rng.uniform());

  RanPark other(999);  // arbitrary different stream
  other.set_state(s);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(other.gaussian(), expect[i]) << "gaussian " << i;
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(other.uniform(), expect[16 + i]) << "uniform " << i;
}

TEST(RanParkState, SetStateRejectsBadSeed) {
  RanPark rng(1);
  EXPECT_THROW(rng.set_state({0, false, 0.0}), Error);
  EXPECT_THROW(rng.set_state({-5, false, 0.0}), Error);
}

// ------------------------------------------------- format-level validation

TEST(RestartFormat, WriteThenValidate) {
  ScratchDir dir("validate");
  init_all();
  auto sim = testing::make_lj_system(2);
  sim->setup();
  sim->write_restart(dir.file("a.restart"));
  EXPECT_TRUE(io::validate_restart_file(dir.file("a.restart")));
  EXPECT_FALSE(io::validate_restart_file(dir.file("missing.restart")));
}

TEST(RestartFormat, TruncatedFileRejected) {
  ScratchDir dir("truncate");
  init_all();
  auto sim = testing::make_lj_system(2);
  sim->setup();
  const std::string path = dir.file("a.restart");
  sim->write_restart(path);

  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  EXPECT_FALSE(io::validate_restart_file(path));
  Simulation fresh;
  EXPECT_THROW(io::RestartReader().read(fresh, path), Error);

  // Even losing a single trailing byte must be detected.
  sim->write_restart(path);
  fs::resize_file(path, full - 1);
  EXPECT_FALSE(io::validate_restart_file(path));
}

TEST(RestartFormat, CorruptPayloadByteRejectedByCrc) {
  ScratchDir dir("corrupt");
  init_all();
  auto sim = testing::make_lj_system(2);
  sim->setup();
  const std::string path = dir.file("a.restart");
  sim->write_restart(path);

  // Flip one byte in the middle of the payload.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = f.tellg();
  f.seekp(std::streamoff(size) / 2);
  char c;
  f.seekg(std::streamoff(size) / 2);
  f.read(&c, 1);
  c = char(c ^ 0x40);
  f.seekp(std::streamoff(size) / 2);
  f.write(&c, 1);
  f.close();

  EXPECT_FALSE(io::validate_restart_file(path));
  Simulation fresh;
  try {
    io::RestartReader().read(fresh, path);
    FAIL() << "corrupt payload accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
  }
}

TEST(RestartFormat, BadMagicRejected) {
  ScratchDir dir("magic");
  const std::string path = dir.file("junk.restart");
  std::ofstream(path, std::ios::binary) << "this is not a restart file";
  EXPECT_FALSE(io::validate_restart_file(path));
  Simulation fresh;
  EXPECT_THROW(io::RestartReader().read(fresh, path), Error);
}

// ------------------------------------------------- bitwise-identical resume

/// Straight nsteps-step melt; returns (snapshot, thermo rows).
std::pair<std::map<tagint, AtomState>, std::vector<ThermoRow>> run_straight(
    bigint nsteps, const std::string& suffix) {
  init_all();
  Simulation sim;
  Input in(sim);
  melt_script(sim, in, suffix);
  in.line("run " + std::to_string(nsteps));
  return {snapshot(sim), sim.thermo.rows()};
}

void bitwise_resume_case(const std::string& suffix, const std::string& tag) {
  ScratchDir dir("bitwise_" + tag);
  const auto [straight_atoms, straight_rows] = run_straight(200, suffix);

  // Writer: checkpoint every 100 steps, killed (abandoned) after step 200's
  // worth would normally follow — here we just stop at 100.
  {
    init_all();
    Simulation sim;
    Input in(sim);
    melt_script(sim, in, suffix);
    in.line("restart 100 " + dir.file("ckpt"));
    in.line("run 100");
  }

  // Resume in a fresh Simulation purely from the checkpoint file.
  init_all();
  Simulation sim;
  Input in(sim);
  sim.thermo.print = false;
  in.line("read_restart " + dir.file("ckpt") + ".100");
  EXPECT_EQ(sim.ntimestep, 100);
  in.line("run 100");

  expect_identical(straight_atoms, snapshot(sim));
  expect_rows_identical(straight_rows, sim.thermo.rows(), 100);
}

TEST(BitwiseResume, MeltSerialPlainStyles) { bitwise_resume_case("", "plain"); }

TEST(BitwiseResume, MeltSerialKokkosDevice) { bitwise_resume_case("kk", "kk"); }

TEST(BitwiseResume, MeltSerialKokkosHost) {
  bitwise_resume_case("kk/host", "kkhost");
}

TEST(BitwiseResume, NVTThermostatStateRoundTrips) {
  ScratchDir dir("nvt");
  auto straight = [&]() {
    init_all();
    Simulation sim;
    Input in(sim);
    melt_script(sim, in);
    in.line("unfix 1");
    in.line("fix 1 all nvt 1.2 0.5");
    in.line("run 200");
    return snapshot(sim);
  }();

  {
    init_all();
    Simulation sim;
    Input in(sim);
    melt_script(sim, in);
    in.line("unfix 1");
    in.line("fix 1 all nvt 1.2 0.5");
    in.line("restart 100 " + dir.file("ckpt"));
    in.line("run 100");
  }

  init_all();
  Simulation sim;
  Input in(sim);
  sim.thermo.print = false;
  in.line("read_restart " + dir.file("ckpt") + ".100");
  // The checkpoint must have re-instantiated fix nvt with its thermostat
  // degree of freedom; zeta != 0 after 100 thermostatted steps.
  ASSERT_EQ(sim.fixes.size(), 1u);
  EXPECT_EQ(sim.fixes[0]->style_name, "nvt");
  in.line("run 100");
  expect_identical(straight, snapshot(sim));
}

TEST(BitwiseResume, LangevinRngStreamResumesMidSequence) {
  // Langevin forces depend on the half-step velocities, so an uninterrupted
  // run is not the reference; the guarantee is writer-continuation ==
  // resumed-from-file, which holds iff the RanPark stream (seed + cached
  // gaussian) round-trips through the checkpoint.
  ScratchDir dir("langevin");
  init_all();

  Simulation a;
  {
    Input in(a);
    melt_script(a, in);
    in.line("fix 2 all langevin 2.0 0.5 9281");
    in.line("run 100");
    in.line("write_restart " + dir.file("mid.restart"));
  }

  Simulation b;
  Input inb(b);
  b.thermo.print = false;
  inb.line("read_restart " + dir.file("mid.restart"));
  ASSERT_EQ(b.fixes.size(), 2u);

  Input ina(a);
  ina.line("run 100");
  inb.line("run 100");
  expect_identical(snapshot(a), snapshot(b));
}

// ------------------------------------------------------------- multi-rank

TEST(RestartMultiRank, BitwiseResumeAcrossWorlds) {
  ScratchDir dir("multirank");
  init_all();
  const int P = 2;

  std::mutex mu;
  std::map<tagint, AtomState> straight_atoms;
  std::vector<ThermoRow> straight_rows;
  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      Input in(sim);
      melt_script(sim, in);
      in.line("run 200");
      auto mine = snapshot(sim);
      std::lock_guard<std::mutex> lk(mu);
      straight_atoms.merge(mine);
      if (comm.rank() == 0) straight_rows = sim.thermo.rows();
    });
  }

  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      Input in(sim);
      melt_script(sim, in);
      in.line("restart 100 " + dir.file("ckpt"));
      in.line("run 100");
    });
  }
  // Every rank must have published its own checkpoint file.
  EXPECT_TRUE(fs::exists(dir.file("ckpt.100.0")));
  EXPECT_TRUE(fs::exists(dir.file("ckpt.100.1")));

  std::map<tagint, AtomState> resumed_atoms;
  std::vector<ThermoRow> resumed_rows;
  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      sim.thermo.print = false;
      Input in(sim);
      in.line("read_restart " + dir.file("ckpt.100"));
      in.line("run 100");
      auto mine = snapshot(sim);
      std::lock_guard<std::mutex> lk(mu);
      resumed_atoms.merge(mine);
      if (comm.rank() == 0) resumed_rows = sim.thermo.rows();
    });
  }

  expect_identical(straight_atoms, resumed_atoms);
  expect_rows_identical(straight_rows, resumed_rows, 100);
}

TEST(RestartMultiRank, RankCountMismatchRejected) {
  ScratchDir dir("rankmismatch");
  init_all();
  {
    simmpi::World world(2);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      Input in(sim);
      melt_script(sim, in);
      in.line("write_restart " + dir.file("two.restart"));
    });
  }

  // A serial run pointed at one of the per-rank files gets the clear error.
  Simulation sim;
  try {
    io::RestartReader().read(sim, dir.file("two.restart.0"));
    FAIL() << "rank-count mismatch accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("resume with the same rank count"),
              std::string::npos)
        << e.what();
  }
}

// ------------------------------------- balance/sort state (format v2)

/// The droplet workload (examples/in.droplet): fcc only in the lower-corner
/// [0, 0.55)^3 of the box, vacuum elsewhere — maximally imbalanced on a
/// static grid, so `balance rcb` fires and installs non-uniform cuts early.
/// `sort every 3` against rebuilds every 10 leaves a nonzero pending
/// builds_since_sort at the step-100 checkpoint.
void droplet_script(Simulation& sim, Input& in) {
  sim.thermo.print = false;
  in.line("units lj");
  in.line("lattice fcc 0.8442");
  in.line("create_atoms 6 6 6 jitter 0.05 78123 region 0 0.55 0 0.55 0 0.55");
  in.line("mass 1 1.0");
  in.line("velocity all create 1.44 87287");
  in.line("pair_style lj/cut 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  in.line("neighbor 0.3 bin");
  in.line("neigh_modify every 10 check no");
  in.line("sort every 3");
  in.line("balance rcb 1.1");
  in.line("fix 1 all nve");
  in.line("thermo 10");
}

TEST(RestartBalance, DropletCutsAndPendingSortRoundTripBitwise) {
  ScratchDir dir("balance");
  init_all();
  const int P = 2;
  std::mutex mu;

  std::map<tagint, AtomState> straight_atoms;
  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      Input in(sim);
      droplet_script(sim, in);
      in.line("run 200");
      auto mine = snapshot(sim);
      std::lock_guard<std::mutex> lk(mu);
      straight_atoms.merge(mine);
    });
  }

  std::vector<double> writer_cuts[3];
  bool writer_cuts_nonuniform = false;
  int writer_builds_since_sort = -1;
  bigint writer_nsorts = -1, writer_nbalances = -1;
  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      Input in(sim);
      droplet_script(sim, in);
      in.line("restart 100 " + dir.file("ckpt"));
      in.line("run 100");
      std::lock_guard<std::mutex> lk(mu);
      if (comm.rank() == 0) {
        for (int d = 0; d < 3; ++d) {
          writer_cuts[d] = sim.domain.cuts(d);
          const auto u =
              uniform_cuts(int(writer_cuts[d].size()) - 1, sim.domain.boxlo[d],
                           sim.domain.boxhi[d]);
          if (writer_cuts[d] != u) writer_cuts_nonuniform = true;
        }
        writer_builds_since_sort = sim.sorter.builds_since_sort;
        writer_nsorts = sim.sorter.nsorts;
        writer_nbalances = sim.balancer.nbalances;
      }
    });
  }
  // The checkpoint captured a genuinely non-trivial mid-run state: the
  // droplet forced at least one rebalance (non-uniform cuts installed) and
  // the sort cadence is mid-phase.
  ASSERT_GT(writer_nbalances, 0);
  ASSERT_GT(writer_nsorts, 0);
  ASSERT_TRUE(writer_cuts_nonuniform);
  ASSERT_GT(writer_builds_since_sort, 0);

  std::map<tagint, AtomState> resumed_atoms;
  {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = &comm;
      sim.thermo.print = false;
      Input in(sim);
      in.line("read_restart " + dir.file("ckpt.100"));
      {
        // Format-v2 payload restored verbatim on every rank.
        std::lock_guard<std::mutex> lk(mu);
        for (int d = 0; d < 3; ++d)
          EXPECT_EQ(sim.domain.cuts(d), writer_cuts[d]) << "dim " << d;
        EXPECT_EQ(sim.sorter.builds_since_sort, writer_builds_since_sort);
        EXPECT_EQ(sim.sorter.nsorts, writer_nsorts);
        EXPECT_EQ(sim.sorter.every, 3);
        EXPECT_TRUE(sim.balancer.enabled);
        EXPECT_EQ(sim.balancer.thresh, 1.1);
        EXPECT_EQ(sim.balancer.nbalances, writer_nbalances);
      }
      in.line("run 100");
      auto mine = snapshot(sim);
      std::lock_guard<std::mutex> lk(mu);
      resumed_atoms.merge(mine);
    });
  }

  expect_identical(straight_atoms, resumed_atoms);
}

// ------------------------------------------------- fault injection/recovery

TEST(FaultRecovery, InjectedCrashRecoversFromLastCheckpoint) {
  ScratchDir dir("faultrecover");
  const auto [straight_atoms, straight_rows] = run_straight(200, "");

  // Writer: checkpoints at 50/100/150, injected node death mid-step 130.
  init_all();
  {
    Simulation sim;
    Input in(sim);
    melt_script(sim, in);
    in.line("restart 50 " + dir.file("job"));
    in.line("fault_inject 130");
    EXPECT_THROW(in.line("run 200"), io::FaultInjected);
    EXPECT_EQ(sim.ntimestep, 130);  // died mid-step 130
  }
  // Steps 50 and 100 were checkpointed; 150 was never reached.
  EXPECT_EQ(io::find_latest_valid_checkpoint(dir.file("job"), 1), 100);

  // Recover: newest valid checkpoint, then finish the job.
  Simulation sim;
  Input in(sim);
  sim.thermo.print = false;
  in.line("recover " + dir.file("job"));
  EXPECT_EQ(sim.ntimestep, 100);
  in.line("run 100");

  expect_identical(straight_atoms, snapshot(sim));
  expect_rows_identical(straight_rows, sim.thermo.rows(), 100);
}

TEST(FaultRecovery, TornNewestCheckpointFallsBackToPrevious) {
  ScratchDir dir("fallback");
  const auto [straight_atoms, straight_rows] = run_straight(200, "");

  init_all();
  {
    Simulation sim;
    Input in(sim);
    melt_script(sim, in);
    in.line("restart 50 " + dir.file("job"));
    in.line("fault_inject 130");
    EXPECT_THROW(in.line("run 200"), io::FaultInjected);
  }

  // The "crash" also tore the newest checkpoint file mid-write.
  const std::string newest = dir.file("job.100");
  fs::resize_file(newest, fs::file_size(newest) / 3);
  EXPECT_FALSE(io::validate_restart_file(newest));

  Simulation sim;
  sim.thermo.print = false;
  const bigint step = io::recover_latest(sim, dir.file("job"));
  EXPECT_EQ(step, 50);  // fell back past the torn checkpoint
  Input in(sim);
  in.line("run 150");

  expect_identical(straight_atoms, snapshot(sim));
  expect_rows_identical(straight_rows, sim.thermo.rows(), 50);
}

TEST(FaultRecovery, NoValidCheckpointIsAClearError) {
  ScratchDir dir("novalid");
  Simulation sim;
  try {
    io::recover_latest(sim, dir.file("job"));
    FAIL() << "recovered from nothing";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no valid checkpoint"),
              std::string::npos);
  }
}

TEST(FaultRecovery, EnvVarArmsInjector) {
  ::setenv("MLK_FAULT_STEP", "7", 1);
  Simulation sim;
  ::unsetenv("MLK_FAULT_STEP");
  EXPECT_TRUE(sim.fault.armed());
  EXPECT_EQ(sim.fault.fault_step(), 7);
  Simulation off;
  EXPECT_FALSE(off.fault.armed());
}

}  // namespace
}  // namespace mlk
