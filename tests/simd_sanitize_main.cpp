// Standalone sanitizer exercise for the header-only kk::simd pack layer
// (ctest `simd_sanitize`, run_tier1.sh --simd). Compiled by
// simd_sanitize.sh with -fsanitize=address,undefined directly against
// src/kokkos/simd.hpp — no gtest, no engine — so masked loads, gathers,
// remainder chunks, and the where() blends run under both sanitizers with
// every lane checked. Exits nonzero on any mismatch; the sanitizers
// themselves abort on OOB reads or UB.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kokkos/simd.hpp"

namespace {

int failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "simd_sanitize: FAIL %s\n", what);
    ++failures;
  }
}

template <int W>
void exercise_width() {
  using pd = kk::simd<double, W>;
  using pm = kk::simd_mask<W>;

  // Arithmetic + comparisons + select on every lane.
  const pd a = pd::iota(1.0), b = pd(2.0);
  const pd c = (a * b + a) / b - pd(0.5);
  for (int l = 0; l < W; ++l) {
    const double s = double(l + 1);
    check(c[l] == (s * 2.0 + s) / 2.0 - 0.5, "arith lane");
  }
  const pm lt = a < pd(double(W));
  check(lt.count() == W - 1, "compare count");
  check(kk::select(lt, a, -a)[W - 1] == -double(W), "select blend");

  // Exactly-sized heap buffer: any lane that reads past n trips ASan.
  const int n = 3 * W + (W > 1 ? W - 1 : 0);  // deliberately ragged
  std::vector<double> buf(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) buf[std::size_t(i)] = 0.25 * i;

  double sum_scalar = 0.0;
  for (int i = 0; i < n; ++i) sum_scalar += buf[std::size_t(i)] * 2.0;

  pd acc;
  const int nfull = n & ~(W - 1);
  for (int i = 0; i < nfull; i += W) acc += pd::load(buf.data() + i) * 2.0;
  const int rem = n - nfull;
  if (rem > 0) {
    const pm tail = pm::first(rem);
    // Masked load + masked gather at the buffer edge: inactive lanes must
    // not dereference past-the-end addresses.
    const pd t = pd::load_masked(buf.data() + nfull, tail);
    const pd g = kk::simd<double, W>::gather_masked(
        tail, [&](int l) { return buf[std::size_t(nfull + l)]; });
    for (int l = 0; l < rem; ++l)
      check(t[l] == g[l], "masked load vs gather");
    kk::where(tail, acc) += t * 2.0;
  }
  const double sum_packed = kk::reduce_sum(acc);
  check(std::abs(sum_packed - sum_scalar) <=
            1e-12 * (std::abs(sum_scalar) + 1.0),
        "remainder sum");

  // All-false mask paths: no lane may be evaluated.
  const pm none(false);
  check(none.none(), "none mask");
  const pd guarded = pd::gather_masked(
      none, [&](int l) { return buf[std::size_t(n + 1000 + l)]; }, 1.5);
  for (int l = 0; l < W; ++l) check(guarded[l] == 1.5, "all-false fill");

  // Masked reduction and horizontal ops.
  check(kk::reduce_sum_masked(none, a) == 0.0, "empty masked sum");
  check(kk::reduce_max(a) == double(W), "reduce_max");
  (void)kk::sqrt(a);
  (void)kk::exp(pd(0.0));
}

}  // namespace

int main() {
  exercise_width<1>();
  exercise_width<2>();
  exercise_width<4>();
  exercise_width<kk::native_simd_width>();
  kk::simdstats::reset();
  kk::simdstats::count_launch("sanitize");
  check(kk::simdstats::launches().at("sanitize") == 1, "simdstats");
  if (failures == 0) std::printf("simd_sanitize: OK\n");
  return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}
