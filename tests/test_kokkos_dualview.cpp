#include <gtest/gtest.h>

#include "kokkos/dualview.hpp"

namespace {

TEST(DualView, SyncCopiesOnlyWhenStale) {
  kk::DualView<double, 1> dv("dv", 4);
  EXPECT_EQ(dv.transfer_count(), 0u);

  dv.h_view(0) = 1.0;
  dv.modify<kk::Host>();
  EXPECT_TRUE(dv.need_sync<kk::Device>());
  dv.sync<kk::Device>();
  EXPECT_DOUBLE_EQ(dv.d_view(0), 1.0);
  EXPECT_EQ(dv.transfer_count(), 1u);

  // Repeated sync with no new modification: no transfer (the paper's claim
  // that flag-driven sync eliminates redundant copies).
  dv.sync<kk::Device>();
  dv.sync<kk::Device>();
  EXPECT_EQ(dv.transfer_count(), 1u);
}

TEST(DualView, RoundTripDeviceToHost) {
  kk::DualView<int, 1> dv("dv", 3);
  dv.d_view(2) = 42;
  dv.modify<kk::Device>();
  EXPECT_TRUE(dv.need_sync<kk::Host>());
  dv.sync<kk::Host>();
  EXPECT_EQ(dv.h_view(2), 42);
  EXPECT_FALSE(dv.need_sync<kk::Host>());
}

TEST(DualView, SyncToOwnSpaceIsNoop) {
  kk::DualView<double, 1> dv("dv", 2);
  dv.h_view(0) = 5.0;
  dv.modify<kk::Host>();
  dv.sync<kk::Host>();  // host already current
  EXPECT_EQ(dv.transfer_count(), 0u);
  EXPECT_TRUE(dv.need_sync<kk::Device>());
}

TEST(DualView, Rank2TransposesBetweenSpaces) {
  kk::DualView<double, 2> dv("dv", 2, 3);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) dv.h_view(i, j) = double(10 * i + j);
  dv.modify<kk::Host>();
  dv.sync<kk::Device>();
  // Logical contents equal; memory layouts differ (host row-major, device
  // column-major), mirroring GPU coalescing-friendly transposition.
  EXPECT_DOUBLE_EQ(dv.d_view(1, 2), 12.0);
  EXPECT_DOUBLE_EQ(dv.h_view.data()[1], 1.0);   // h(0,1)
  EXPECT_DOUBLE_EQ(dv.d_view.data()[1], 10.0);  // d(1,0)
}

TEST(DualView, HostPointerAliasingSurvivesSync) {
  // Legacy code holds a raw pointer into the host view (Fig. 1's
  // AtomVecAtomic x aliasing AtomVecAtomicKokkos's h_view).
  kk::DualView<double, 2> dv("x", 4, 3);
  double* raw = dv.h_view.data();
  raw[0 * 3 + 1] = 9.5;  // legacy write to x[0][1]
  dv.modify<kk::Host>();
  dv.sync<kk::Device>();
  EXPECT_DOUBLE_EQ(dv.d_view(0, 1), 9.5);
  // Device modifies, sync back: legacy pointer sees the update.
  dv.d_view(0, 1) = -2.5;
  dv.modify<kk::Device>();
  dv.sync<kk::Host>();
  EXPECT_DOUBLE_EQ(raw[0 * 3 + 1], -2.5);
  EXPECT_EQ(raw, dv.h_view.data());
}

TEST(DualView, ResizePreserveKeepsNewestCopy) {
  kk::DualView<double, 1> dv("dv", 2);
  dv.h_view(0) = 1.0;
  dv.h_view(1) = 2.0;
  dv.modify<kk::Host>();
  dv.resize_preserve(4);
  EXPECT_EQ(dv.extent(0), 4u);
  dv.sync<kk::Device>();
  EXPECT_DOUBLE_EQ(dv.d_view(0), 1.0);
  EXPECT_DOUBLE_EQ(dv.d_view(1), 2.0);
}

TEST(DualView, ResizePreserveDeviceAuthoritative) {
  kk::DualView<double, 1> dv("dv", 2);
  dv.d_view(0) = 7.0;
  dv.modify<kk::Device>();
  dv.resize_preserve(3);
  dv.sync<kk::Host>();
  EXPECT_DOUBLE_EQ(dv.h_view(0), 7.0);
}

TEST(DualView, ReallocClearsFlags) {
  kk::DualView<double, 1> dv("dv", 2);
  dv.h_view(0) = 3.0;
  dv.modify<kk::Host>();
  dv.realloc(8);
  EXPECT_FALSE(dv.need_sync<kk::Device>());
  EXPECT_FALSE(dv.need_sync<kk::Host>());
  EXPECT_EQ(dv.extent(0), 8u);
}

TEST(DualView, PureHostUsageIncursNoTransfers) {
  // §3.2: in a pure host build the sync machinery is inert.
  kk::DualView<double, 1> dv("dv", 16);
  for (int pass = 0; pass < 10; ++pass) {
    dv.h_view(0) += 1.0;
    dv.modify<kk::Host>();
    dv.sync<kk::Host>();
  }
  EXPECT_EQ(dv.transfer_count(), 0u);
}

}  // namespace
