#!/usr/bin/env bash
# Balance smoke (ctest `balance_smoke`, run_tier1.sh --balance): run the
# droplet example (vacuum-gap lattice, docs/DECOMPOSITION.md) with tracing
# on, then check the decomposition observables end to end:
#
#   * the end-of-run breakdown prints the per-rank atom imbalance line
#     (max/avg ratio plus rebalance and sort counts);
#   * spatial sorts actually fired (`sort every 5` against the pinned
#     rebuild schedule);
#   * the chrome trace carries the balance.imbalance_ratio counter track
#     emitted at every neighbor rebuild while `balance rcb` is armed.
#
# Usage: balance_smoke.sh <run_script> <validate_trace> <in.droplet>
set -euo pipefail

run_script="$1"
validate_trace="$2"
droplet_in="$3"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

(cd "$scratch" &&
 MLK_TRACE="$scratch/droplet.trace.json" \
   "$run_script" "$droplet_in") > "$scratch/droplet.out"

fail() { echo "balance smoke: $*" >&2; exit 1; }

grep -q 'Atom imbalance:' "$scratch/droplet.out" ||
  fail "breakdown is missing the atom-imbalance line"
imb_line="$(grep 'Atom imbalance:' "$scratch/droplet.out")"

sorts="$(sed -n 's/.*sorts: \([0-9][0-9]*\).*/\1/p' "$scratch/droplet.out")"
[[ -n "$sorts" ]] || fail "imbalance line carries no sort count"
(( sorts >= 1 )) || fail "no spatial sorts fired (sort every 5 armed)"

"$validate_trace" --require-counters \
  --require-counter=balance.imbalance_ratio \
  "$scratch/droplet.trace.json"

echo "balance smoke: $imb_line"
echo "balance smoke: OK"
