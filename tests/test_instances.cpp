// kk::DeviceInstance semantics: FIFO order within an instance, concurrency
// across instances, per-instance fencing (fence() on one does not drain the
// other), async dispatch overloads, error propagation, and the global
// kk::fence() draining every live instance.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "kokkos/core.hpp"
#include "kokkos/instance.hpp"

namespace {

using namespace std::chrono_literals;

TEST(DeviceInstance, TasksRunFifoOnOneInstance) {
  kk::DeviceInstance inst("fifo");
  std::vector<int> order;
  for (int k = 0; k < 16; ++k)
    inst.enqueue("task", [&order, k] { order.push_back(k); });
  inst.fence();
  ASSERT_EQ(order.size(), 16u);
  for (int k = 0; k < 16; ++k) EXPECT_EQ(order[std::size_t(k)], k);
  EXPECT_EQ(inst.tasks_completed(), 16u);
  EXPECT_TRUE(inst.idle());
}

TEST(DeviceInstance, TwoInstancesInterleaveWork) {
  // a's task blocks until b's task has started: if the two instances did not
  // run concurrently this would deadlock (guarded by a timeout flag).
  kk::DeviceInstance a("a"), b("b");
  std::atomic<bool> b_started{false};
  std::atomic<bool> a_saw_b{false};
  a.enqueue("wait-for-b", [&] {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!b_started.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    a_saw_b = b_started.load();
  });
  b.enqueue("signal", [&] { b_started = true; });
  a.fence();
  b.fence();
  EXPECT_TRUE(a_saw_b.load()) << "instance a never observed instance b "
                                 "running concurrently";
}

TEST(DeviceInstance, FenceOnOneDoesNotDrainTheOther) {
  kk::DeviceInstance fast("fast"), slow("slow");
  std::atomic<bool> release{false};
  std::atomic<bool> slow_done{false};
  slow.enqueue("hold", [&] {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (!release.load() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
    slow_done = true;
  });
  std::atomic<bool> fast_done{false};
  fast.enqueue("quick", [&] { fast_done = true; });

  fast.fence();  // must return while slow's task is still held
  EXPECT_TRUE(fast_done.load());
  EXPECT_FALSE(slow_done.load())
      << "fence() on one instance drained the other";
  EXPECT_FALSE(slow.idle());

  release = true;
  slow.fence();
  EXPECT_TRUE(slow_done.load());
}

TEST(DeviceInstance, AsyncParallelForMatchesSynchronous) {
  const std::size_t n = 10000;
  std::vector<double> async_out(n, 0.0), sync_out(n, 0.0);
  double* ap = async_out.data();
  double* sp = sync_out.data();

  kk::parallel_for("sync_fill", n,
                   [=](std::size_t i) { sp[i] = double(i) * 1.5 + 1.0; });
  {
    kk::DeviceInstance inst("for");
    kk::parallel_for(inst, "async_fill", n,
                     [=](std::size_t i) { ap[i] = double(i) * 1.5 + 1.0; });
    inst.fence();
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(async_out[i], sync_out[i]);
}

TEST(DeviceInstance, AsyncParallelReduceDefinedAfterFence) {
  const std::size_t n = 4321;
  double async_sum = 0.0, sync_sum = 0.0;
  kk::parallel_reduce(
      "sync_sum", kk::RangePolicy<kk::DefaultExecutionSpace>(n),
      [](std::size_t i, double& s) { s += double(i); }, sync_sum);

  kk::DeviceInstance inst("reduce");
  kk::parallel_reduce(
      inst, "async_sum", kk::RangePolicy<kk::DefaultExecutionSpace>(n),
      [](std::size_t i, double& s) { s += double(i); }, async_sum);
  inst.fence();
  EXPECT_EQ(async_sum, sync_sum);
}

TEST(DeviceInstance, SameInstanceTasksAreOrderedAcrossKernels) {
  // A kernel and a host task on the same instance must serialize: the task
  // reads what the kernel wrote.
  const std::size_t n = 2048;
  std::vector<double> data(n, 0.0);
  double* p = data.data();
  double observed = -1.0;
  kk::DeviceInstance inst("ordered");
  kk::parallel_for(inst, "fill", n, [=](std::size_t i) { p[i] = 2.0; });
  inst.enqueue("check", [&observed, p, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += p[i];
    observed = s;
  });
  inst.fence();
  EXPECT_EQ(observed, 2.0 * double(n));
}

TEST(DeviceInstance, FenceRethrowsTaskException) {
  kk::DeviceInstance inst("throws");
  inst.enqueue("boom", [] { throw std::runtime_error("task failed"); });
  std::atomic<bool> later_ran{false};
  inst.enqueue("after", [&] { later_ran = true; });
  EXPECT_THROW(inst.fence(), std::runtime_error);
  EXPECT_TRUE(later_ran.load()) << "tasks after a throwing task must run";
  inst.fence();  // error consumed by the first fence
}

TEST(DeviceInstance, GlobalFenceDrainsAllInstances) {
  kk::DeviceInstance a("ga"), b("gb");
  std::atomic<int> done{0};
  for (int k = 0; k < 8; ++k) {
    a.enqueue("t", [&] { ++done; });
    b.enqueue("t", [&] { ++done; });
  }
  kk::fence();
  EXPECT_EQ(done.load(), 16);
  EXPECT_TRUE(a.idle());
  EXPECT_TRUE(b.idle());
}

TEST(DeviceInstance, LiveCountTracksConstructionAndDestruction) {
  const int base = kk::DeviceInstance::live_count();
  {
    kk::DeviceInstance x;
    EXPECT_EQ(kk::DeviceInstance::live_count(), base + 1);
    EXPECT_EQ(x.name(), "instance-" + std::to_string(x.id()));
  }
  EXPECT_EQ(kk::DeviceInstance::live_count(), base);
}

TEST(DeviceInstance, ConcurrentKernelDispatchIsSafe) {
  // Two instances dispatching pool kernels at the same time must serialize
  // at the pool's dispatch gate, not corrupt each other's job state.
  const std::size_t n = 50000;
  std::vector<double> va(n, 0.0), vb(n, 0.0);
  double* pa = va.data();
  double* pb = vb.data();
  kk::DeviceInstance a("ka"), b("kb");
  for (int rep = 0; rep < 5; ++rep) {
    kk::parallel_for(a, "stream_a", n,
                     [=](std::size_t i) { pa[i] += 1.0; });
    kk::parallel_for(b, "stream_b", n,
                     [=](std::size_t i) { pb[i] += 2.0; });
  }
  a.fence();
  b.fence();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(va[i], 5.0);
    ASSERT_EQ(vb[i], 10.0);
  }
}

}  // namespace
