// Performance-model tests: architecture database integrity, GPU model
// monotonicity/limiter properties, and the strong-scaling network model.
#include <gtest/gtest.h>

#include "perfmodel/archdb.hpp"
#include "perfmodel/gpumodel.hpp"
#include "perfmodel/network.hpp"
#include "util/error.hpp"

namespace mlk::perf {
namespace {

TEST(ArchDB, Table1RowsPresent) {
  for (const char* name :
       {"V100", "A100", "H100", "GH200", "MI250X", "MI300A", "PVC", "CPU"}) {
    const GpuArch& a = arch(name);
    EXPECT_GT(a.hbm_bw, 0.0) << name;
    EXPECT_GT(a.fp64, 0.0) << name;
    EXPECT_GT(a.l1_total_kb(), 0.0) << name;
  }
  EXPECT_THROW(arch("TPU"), Error);
}

TEST(ArchDB, Table1ValuesMatchPaper) {
  EXPECT_DOUBLE_EQ(arch("V100").hbm_bw, 0.9e12);
  EXPECT_DOUBLE_EQ(arch("H100").fp64, 34e12);
  EXPECT_DOUBLE_EQ(arch("GH200").hbm_bw, 4.0e12);
  EXPECT_DOUBLE_EQ(arch("MI300A").hbm_bw, 5.3e12);
  EXPECT_DOUBLE_EQ(arch("MI300A").fp64, 61e12);
  EXPECT_DOUBLE_EQ(arch("PVC").hbm_capacity, 64e9);
  EXPECT_DOUBLE_EQ(arch("H100").l1_total_kb(), 256.0);
  EXPECT_DOUBLE_EQ(arch("MI250X").l1_kb, 16.0);
  EXPECT_DOUBLE_EQ(arch("MI250X").shared_kb, 64.0);
  // Generational ordering.
  EXPECT_LT(arch("V100").hbm_bw, arch("A100").hbm_bw);
  EXPECT_LT(arch("A100").hbm_bw, arch("H100").hbm_bw);
}

TEST(ArchDB, MachinesMatchPaperConfigs) {
  EXPECT_EQ(machine("Frontier").gpus_per_node, 8);   // 4x MI250X = 8 GCDs
  EXPECT_EQ(machine("Aurora").gpus_per_node, 12);    // 6x PVC = 12 stacks
  EXPECT_EQ(machine("ElCapitan").gpus_per_node, 4);
  EXPECT_EQ(machine("Alps").gpus_per_node, 4);
  EXPECT_EQ(machine("Eos").gpus_per_node, 4);        // intentionally 4 of 8
  EXPECT_EQ(machine("Frontier").max_nodes, 8192);
  EXPECT_THROW(machine("Summit"), Error);
}

KernelWorkload simple_kernel() {
  KernelWorkload w;
  w.name = "k";
  w.flops = 1e9;
  w.unique_bytes = 1e8;
  w.parallel_items = 1e6;
  return w;
}

TEST(GpuModel, TimeIsPositiveAndComposable) {
  GpuModel g(arch("H100"));
  const auto t = g.time(simple_kernel());
  EXPECT_GT(t.seconds, 0.0);
  std::vector<KernelWorkload> two = {simple_kernel(), simple_kernel()};
  EXPECT_NEAR(g.total_seconds(two), 2.0 * t.seconds, 1e-12);
}

TEST(GpuModel, RooflineLimiters) {
  GpuModel g(arch("H100"));
  KernelWorkload flop = simple_kernel();
  flop.flops = 1e13;  // dominated by FP64
  EXPECT_STREQ(g.time(flop).limiter, "fp64");

  KernelWorkload mem = simple_kernel();
  mem.unique_bytes = 1e11;
  EXPECT_STREQ(g.time(mem).limiter, "mem");

  KernelWorkload atom = simple_kernel();
  atom.atomics = 1e12;
  EXPECT_STREQ(g.time(atom).limiter, "atomic");

  KernelWorkload tiny = simple_kernel();
  tiny.flops = 1.0;
  tiny.unique_bytes = 8.0;
  EXPECT_STREQ(g.time(tiny).limiter, "launch");
}

TEST(GpuModel, MoreParallelismNeverSlower) {
  GpuModel g(arch("H100"));
  double prev = 1e300;
  for (double p : {1e3, 1e4, 1e5, 1e6, 1e7}) {
    KernelWorkload w = simple_kernel();
    w.parallel_items = p;
    const double t = g.time(w).seconds;
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(GpuModel, CacheResidencySpeedsUpReuse) {
  GpuModel g(arch("H100"));
  KernelWorkload small = simple_kernel();
  small.reuse_bytes = 1e10;
  small.working_set = 1e6;  // fits in L1
  KernelWorkload big = small;
  big.working_set = 1e12;  // spills to HBM
  EXPECT_LT(g.time(small).seconds, g.time(big).seconds);
}

TEST(GpuModel, CarveoutTradesL1ForShared) {
  // An L1-hungry kernel slows down as carveout grows; a shared-hungry
  // kernel speeds up (the Fig. 3 mechanism).
  KernelWorkload l1k = simple_kernel();
  l1k.reuse_bytes = 1e10;
  l1k.working_set = 30e6;
  KernelWorkload shk = simple_kernel();
  shk.uses_shared = true;
  shk.shared_per_sm = 200e3;

  GpuModel lo(arch("H100"));
  lo.carveout = 0.1;
  GpuModel hi(arch("H100"));
  hi.carveout = 0.9;
  EXPECT_LT(lo.time(l1k).seconds, hi.time(l1k).seconds);
  EXPECT_GT(lo.time(shk).seconds, hi.time(shk).seconds);
}

TEST(GpuModel, CarveoutIrrelevantOnFixedCacheArchs) {
  KernelWorkload w = simple_kernel();
  w.reuse_bytes = 1e10;
  w.working_set = 5e6;
  GpuModel lo(arch("MI250X"));
  lo.carveout = 0.1;
  GpuModel hi(arch("MI250X"));
  hi.carveout = 0.9;
  EXPECT_DOUBLE_EQ(lo.time(w).seconds, hi.time(w).seconds);
}

TEST(NetworkModel, StrongScalingIncreasesThenSaturates) {
  MachineModel m(machine("Frontier"));
  auto workloads = [](bigint n) {
    KernelWorkload w;
    w.name = "force";
    w.flops = double(n) * 1e4;
    w.unique_bytes = double(n) * 200.0;
    w.parallel_items = double(n);
    return std::vector<KernelWorkload>{w};
  };
  double prev = 0.0;
  for (int nodes : {8, 32, 128, 512}) {
    const auto pt = m.step_time(16000000, nodes, workloads, 0.8, 2.8);
    EXPECT_GT(pt.steps_per_second, prev) << nodes;
    prev = pt.steps_per_second;
  }
  // Deep strong scaling: gains flatten (comm + host overhead floor).
  const auto a = m.step_time(16000000, 2048, workloads, 0.8, 2.8);
  const auto b = m.step_time(16000000, 8192, workloads, 0.8, 2.8);
  EXPECT_LT(b.steps_per_second / a.steps_per_second, 1.5);
}

TEST(NetworkModel, ExtraCommRoundsSlowTheStep) {
  MachineModel m(machine("Alps"));
  auto workloads = [](bigint n) {
    KernelWorkload w;
    w.flops = double(n) * 1e5;
    w.parallel_items = double(n);
    return std::vector<KernelWorkload>{w};
  };
  const auto plain = m.step_time(1000000, 64, workloads, 0.05, 10.0);
  const auto qeqish =
      m.step_time(1000000, 64, workloads, 0.05, 10.0, 48.0, 30.0, 61.0);
  EXPECT_GT(plain.steps_per_second, qeqish.steps_per_second);
}

TEST(NetworkModel, HaloShrinksWithSubdomainSurface) {
  MachineModel m(machine("Alps"));
  auto workloads = [](bigint) { return std::vector<KernelWorkload>{}; };
  const auto big = m.step_time(64000000, 4, workloads, 0.8, 2.8);
  const auto small = m.step_time(64000000, 256, workloads, 0.8, 2.8);
  // Per-GPU comm time falls as sub-domains shrink relative to... the ratio
  // of ghosts to locals grows, but absolute halo bytes per GPU drop.
  EXPECT_GT(big.t_comm, small.t_comm);
}

}  // namespace
}  // namespace mlk::perf
