#include <gtest/gtest.h>

#include <cmath>

#include "pair/pair_lj_cut_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

TEST(Units, LJDefaultsAreReduced) {
  const Units u = Units::make("lj");
  EXPECT_DOUBLE_EQ(u.boltz, 1.0);
  EXPECT_DOUBLE_EQ(u.mvv2e, 1.0);
}

TEST(Units, MetalConstants) {
  const Units u = Units::make("metal");
  EXPECT_NEAR(u.boltz, 8.617e-5, 1e-7);
  EXPECT_NEAR(u.mvv2e * u.ftm2v, 1.0, 1e-12);
}

TEST(Units, UnknownThrows) { EXPECT_THROW(Units::make("parsec"), Error); }

TEST(Atom, GrowPreservesData) {
  Atom a;
  a.set_ntypes(2);
  a.add_atom(1, 1, 0.1, 0.2, 0.3);
  a.add_atom(2, 2, 1.0, 1.1, 1.2);
  a.grow(5000);
  EXPECT_DOUBLE_EQ(a.k_x.h_view(0, 2), 0.3);
  EXPECT_EQ(a.k_type.h_view(1), 2);
  EXPECT_EQ(a.k_tag.h_view(1), 2);
  EXPECT_GE(a.nmax(), 5000);
}

TEST(Atom, MassPerType) {
  Atom a;
  a.set_ntypes(2);
  a.set_mass(1, 12.0);
  a.set_mass(2, 16.0);
  EXPECT_DOUBLE_EQ(a.mass_of_type(1), 12.0);
  EXPECT_DOUBLE_EQ(a.mass_of_type(2), 16.0);
  EXPECT_THROW(a.set_mass(3, 1.0), Error);
  EXPECT_THROW(a.set_mass(1, -1.0), Error);
}

TEST(Lattice, FccCountsAndDensity) {
  Simulation sim;
  LatticeSpec spec;
  spec.style = "fcc";
  spec.a = std::cbrt(4.0 / 0.8442);
  spec.nx = spec.ny = spec.nz = 3;
  create_lattice(spec, sim.domain, sim.atom);
  EXPECT_EQ(sim.atom.nlocal, 4 * 27);
  EXPECT_EQ(sim.atom.natoms, 4 * 27);
  const double rho = double(sim.atom.nlocal) / sim.domain.volume();
  EXPECT_NEAR(rho, 0.8442, 1e-9);
}

TEST(Lattice, HnsLikeHasTwoTypes) {
  Simulation sim;
  LatticeSpec spec;
  spec.style = "hns_like";
  spec.a = 5.0;
  spec.nx = spec.ny = spec.nz = 2;
  create_lattice(spec, sim.domain, sim.atom);
  EXPECT_EQ(sim.atom.nlocal, 8 * 8);
  int n1 = 0, n2 = 0;
  for (localint i = 0; i < sim.atom.nlocal; ++i)
    (sim.atom.k_type.h_view(std::size_t(i)) == 1 ? n1 : n2)++;
  EXPECT_EQ(n1, 32);
  EXPECT_EQ(n2, 32);
}

TEST(Velocity, TemperatureMatchesRequest) {
  auto sim = make_lj_system(4, 0.8442, 0.0, "lj/cut", 1.44);
  sim->setup();
  // Finite-N fluctuation: expect within a few percent for 1024 atoms.
  EXPECT_NEAR(sim->temperature(), 1.44, 0.1);
}

TEST(Velocity, NetMomentumIsZero) {
  auto sim = make_lj_system(3, 0.8442, 0.0);
  const auto v = sim->atom.k_v.h_view;
  double p[3] = {0, 0, 0};
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    for (int d = 0; d < 3; ++d) p[d] += v(std::size_t(i), std::size_t(d));
  for (int d = 0; d < 3; ++d) EXPECT_NEAR(p[d], 0.0, 1e-10);
}

TEST(Registry, SuffixResolution) {
  init_all();
  auto& reg = StyleRegistry::instance();
  auto host_pair = reg.create_pair("lj/cut/kk/host");
  EXPECT_EQ(host_pair->execution_space, ExecSpaceKind::Host);
  auto dev_pair = reg.create_pair("lj/cut/kk");
  EXPECT_EQ(dev_pair->execution_space, ExecSpaceKind::Device);
  auto dev2 = reg.create_pair("lj/cut/kk/device");
  EXPECT_EQ(dev2->execution_space, ExecSpaceKind::Device);
  auto plain = reg.create_pair("lj/cut");
  EXPECT_EQ(plain->execution_space, ExecSpaceKind::Host);
}

TEST(Registry, GlobalSuffixUpgradesPlainNames) {
  init_all();
  auto& reg = StyleRegistry::instance();
  auto p = reg.create_pair("lj/cut", "kk");
  EXPECT_EQ(p->execution_space, ExecSpaceKind::Device);
  EXPECT_EQ(p->style_name, "lj/cut/kk");
  auto h = reg.create_pair("lj/cut", "kk/host");
  EXPECT_EQ(h->execution_space, ExecSpaceKind::Host);
}

TEST(Registry, UnknownStyleThrows) {
  init_all();
  EXPECT_THROW(StyleRegistry::instance().create_pair("eam/noexist"), Error);
  EXPECT_THROW(StyleRegistry::instance().create_fix("bogus"), Error);
}

TEST(Input, UnknownCommandThrows) {
  Simulation sim;
  Input in(sim);
  EXPECT_THROW(in.line("frobnicate 3"), Error);
}

TEST(Input, ComputeStylesAccessible) {
  auto sim = make_lj_system(2);
  Input in(*sim);
  in.line("compute t all temp");
  in.line("compute e all pe");
  sim->setup();
  Compute* t = in.find_compute("t");
  ASSERT_NE(t, nullptr);
  EXPECT_NEAR(t->compute_scalar(*sim), sim->temperature(), 1e-12);
  EXPECT_EQ(in.find_compute("missing"), nullptr);
}

TEST(NVE, EnergyConservedOverManySteps) {
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 1.44);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("thermo 10");
  in.line("timestep 0.005");
  in.line("run 100");
  const auto& rows = sim->thermo.rows();
  ASSERT_GE(rows.size(), 2u);
  const double e0 = rows.front().etotal;
  for (const auto& r : rows)
    EXPECT_NEAR(r.etotal, e0, 2e-3 * std::abs(e0))
        << "drift at step " << r.step;
}

TEST(NVE, KokkosDeviceTrajectoryMatchesHost) {
  auto run_one = [](const std::string& pair_style, const std::string& fix) {
    auto sim = make_lj_system(2, 0.8442, 0.0, pair_style, 1.0);
    // Force identical neighbor configuration for bitwise-comparable runs.
    if (auto* kkp =
            dynamic_cast<PairLJCutKokkos<kk::Device>*>(sim->pair.get()))
      kkp->set_neighbor_mode(NeighStyle::Half, true);
    Input in(*sim);
    in.line("fix 1 all " + fix);
    in.line("thermo 5");
    in.line("run 20");
    return sim->thermo.rows().back();
  };
  const auto host = run_one("lj/cut", "nve");
  const auto dev = run_one("lj/cut/kk", "nve/kk");
  EXPECT_NEAR(host.etotal, dev.etotal, 1e-8 * std::abs(host.etotal));
  EXPECT_NEAR(host.temp, dev.temp, 1e-8);
}

TEST(Langevin, ThermostatsTowardTarget) {
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 0.1);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("fix 2 all langevin 2.0 0.5 9281");
  in.line("thermo 50");
  in.line("run 400");
  const double t_end = sim->thermo.rows().back().temp;
  EXPECT_GT(t_end, 1.0);  // heated well above 0.1 toward 2.0
}

TEST(Thermo, RowsRecordedAtRequestedInterval) {
  auto sim = make_lj_system(2, 0.8442, 0.0, "lj/cut", 1.0);
  Input in(*sim);
  in.line("fix 1 all nve");
  in.line("thermo 25");
  in.line("run 100");
  const auto& rows = sim->thermo.rows();
  // setup row + steps 25,50,75,100.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].step, 0);
  EXPECT_EQ(rows[2].step, 50);
  EXPECT_EQ(rows.back().step, 100);
}

TEST(Pressure, ColdLatticeVirialMatchesdEdV) {
  // P = -dE/dV at T=0: compare the virial pressure against a numerical
  // volume derivative obtained by rescaling the box + coordinates.
  auto e_of_scale = [](double s) {
    auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 0.0);
    auto x = sim->atom.k_x.h_view;
    for (localint i = 0; i < sim->atom.nlocal; ++i)
      for (int d = 0; d < 3; ++d) x(std::size_t(i), std::size_t(d)) *= s;
    sim->domain.set_box(0, sim->domain.boxhi[0] * s, 0,
                        sim->domain.boxhi[1] * s, 0,
                        sim->domain.boxhi[2] * s);
    sim->atom.modified<kk::Host>(X_MASK);
    const double e = testing::total_pe(*sim);
    return std::make_pair(e, sim->domain.volume());
  };
  auto sim = make_lj_system(3, 0.8442, 0.0, "lj/cut", 0.0);
  testing::total_pe(*sim);
  const double p_virial = sim->pressure();

  const double ds = 1e-5;
  const auto [ep, vp] = e_of_scale(1.0 + ds);
  const auto [em, vm] = e_of_scale(1.0 - ds);
  const double p_numeric = -(ep - em) / (vp - vm);
  EXPECT_NEAR(p_virial, p_numeric, 1e-4 * std::max(1.0, std::abs(p_numeric)));
}

}  // namespace
}  // namespace mlk
