// Unit tests for the over-allocated CSR container and the QEq solver
// against dense linear-algebra references.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "reaxff/pair_reaxff_lite.hpp"
#include "reaxff/sparse.hpp"
#include "test_helpers.hpp"

namespace mlk::reaxff {
namespace {

/// Build a small over-allocated CSR from a dense matrix (zeros padded).
OACSR<kk::Host> from_dense(const std::vector<std::vector<double>>& a) {
  const localint n = localint(a.size());
  OACSR<kk::Host> m;
  m.allocate_rows(n);
  const int max_row = int(a.size());
  m.capacity = bigint(n) * max_row;
  m.col = kk::View1D<int, kk::Host>("col", std::size_t(m.capacity));
  m.val = kk::View1D<double, kk::Host>("val", std::size_t(m.capacity));
  for (localint i = 0; i <= n; ++i)
    if (i <= n) m.row_offset(std::size_t(i)) = bigint(i) * max_row;
  for (localint i = 0; i < n; ++i) {
    int c = 0;
    for (localint j = 0; j < n; ++j) {
      if (a[std::size_t(i)][std::size_t(j)] == 0.0) continue;
      m.col(std::size_t(m.row_offset(std::size_t(i))) + std::size_t(c)) = j;
      m.val(std::size_t(m.row_offset(std::size_t(i))) + std::size_t(c)) =
          a[std::size_t(i)][std::size_t(j)];
      ++c;
    }
    m.row_count(std::size_t(i)) = c;  // over-allocated: c < max_row is fine
  }
  return m;
}

TEST(OACSR, SpmvMatchesDense) {
  const std::vector<std::vector<double>> a = {
      {0, 2, 0, 1}, {2, 0, 3, 0}, {0, 3, 0, 0}, {1, 0, 0, 0}};
  auto m = from_dense(a);
  EXPECT_EQ(m.total_nonzeros(), 6);

  kk::View1D<double, kk::Host> x("x", 4), y("y", 4);
  for (std::size_t i = 0; i < 4; ++i) x(i) = double(i) + 1.0;
  m.spmv(x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    double expect = 0;
    for (std::size_t j = 0; j < 4; ++j) expect += a[i][j] * x(j);
    EXPECT_DOUBLE_EQ(y(i), expect);
  }
}

TEST(OACSR, DualSpmvEqualsTwoSingles) {
  const std::vector<std::vector<double>> a = {
      {0, 1, 4}, {1, 0, 2}, {4, 2, 0}};
  auto m = from_dense(a);
  kk::View1D<double, kk::Host> x1("x1", 3), x2("x2", 3), y1("y1", 3),
      y2("y2", 3), r1("r1", 3), r2("r2", 3);
  for (std::size_t i = 0; i < 3; ++i) {
    x1(i) = double(i) - 1.0;
    x2(i) = 2.0 * double(i) + 0.5;
  }
  m.spmv(x1, r1);
  m.spmv(x2, r2);
  m.spmv_dual(x1, x2, y1, y2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y1(i), r1(i));
    EXPECT_DOUBLE_EQ(y2(i), r2(i));
  }
}

TEST(OACSR, TeamSpmvMatchesFlat) {
  const std::vector<std::vector<double>> a = {
      {0, 1, 0, 2, 0}, {1, 0, 3, 0, 0}, {0, 3, 0, 1, 1},
      {2, 0, 1, 0, 4}, {0, 0, 1, 4, 0}};
  auto m = from_dense(a);
  kk::View1D<double, kk::Host> x("x", 5), yf("yf", 5), yt("yt", 5);
  for (std::size_t i = 0; i < 5; ++i) x(i) = std::sin(double(i) + 1.0);
  m.spmv(x, yf);
  m.spmv_team(x, yt);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(yt(i), yf(i));
}

TEST(QEqSolver, MatchesDenseSolutionOnTinySystem) {
  // Two atoms: analytic QEq solution q1 = -q2 = (chi2 - chi1) /
  // (eta1 + eta2 + 2*H12 ... ) — solve the 2x2 KKT system directly and
  // compare with the CG + neutrality-projection path.
  using testing::total_pe;
  init_all();
  Simulation sim;
  sim.thermo.print = false;
  Input in(sim);
  in.line("units real");
  in.line("lattice hns_like 5.2");
  in.line("create_atoms 2 2 2 jitter 0.02 4411");
  in.line("mass 1 12.0");
  in.line("mass 2 16.0");
  in.line("pair_style reaxff-lite");
  in.line("pair_coeff * * hns");
  total_pe(sim);

  auto* pair = dynamic_cast<PairReaxFFLite<kk::Host>*>(sim.pair.get());
  const auto& H = pair->qeq().matrix();
  const ReaxParams& p = pair->params();
  const localint n = sim.atom.nlocal;

  // Dense assembly of A = H + diag(eta) over owned atoms, folding ghost
  // columns onto their owners by tag.
  sim.atom.sync<kk::Host>(Q_MASK | TYPE_MASK | TAG_MASK);
  std::vector<localint> owner_of(std::size_t(sim.atom.nall()));
  {
    std::map<tagint, localint> by_tag;
    for (localint i = 0; i < n; ++i)
      by_tag[sim.atom.k_tag.h_view(std::size_t(i))] = i;
    for (localint i = 0; i < sim.atom.nall(); ++i)
      owner_of[std::size_t(i)] = by_tag.at(sim.atom.k_tag.h_view(std::size_t(i)));
  }
  std::vector<std::vector<double>> A(std::size_t(n),
                                     std::vector<double>(std::size_t(n), 0.0));
  for (localint i = 0; i < n; ++i) {
    A[std::size_t(i)][std::size_t(i)] +=
        p.eta[sim.atom.k_type.h_view(std::size_t(i))];
    const bigint beg = H.row_offset(std::size_t(i));
    for (int k = 0; k < H.row_count(std::size_t(i)); ++k) {
      const int j = H.col(std::size_t(beg + k));
      A[std::size_t(i)][std::size_t(owner_of[std::size_t(j)])] +=
          H.val(std::size_t(beg + k));
    }
  }
  // Dense Gaussian elimination for A s = -chi and A t = -1.
  auto solve = [&](std::vector<double> b) {
    auto M = A;
    const int nn = int(n);
    for (int c = 0; c < nn; ++c) {
      int piv = c;
      for (int r = c + 1; r < nn; ++r)
        if (std::abs(M[std::size_t(r)][std::size_t(c)]) >
            std::abs(M[std::size_t(piv)][std::size_t(c)]))
          piv = r;
      std::swap(M[std::size_t(c)], M[std::size_t(piv)]);
      std::swap(b[std::size_t(c)], b[std::size_t(piv)]);
      for (int r = c + 1; r < nn; ++r) {
        const double f = M[std::size_t(r)][std::size_t(c)] /
                         M[std::size_t(c)][std::size_t(c)];
        for (int k = c; k < nn; ++k)
          M[std::size_t(r)][std::size_t(k)] -=
              f * M[std::size_t(c)][std::size_t(k)];
        b[std::size_t(r)] -= f * b[std::size_t(c)];
      }
    }
    std::vector<double> x(std::size_t(nn), 0.0);
    for (int r = nn - 1; r >= 0; --r) {
      double acc = b[std::size_t(r)];
      for (int k = r + 1; k < nn; ++k)
        acc -= M[std::size_t(r)][std::size_t(k)] * x[std::size_t(k)];
      x[std::size_t(r)] = acc / M[std::size_t(r)][std::size_t(r)];
    }
    return x;
  };
  std::vector<double> bchi(std::size_t(n), 0.0);
  std::vector<double> bone(std::size_t(n), -1.0);
  for (localint i = 0; i < n; ++i)
    bchi[std::size_t(i)] = -p.chi[sim.atom.k_type.h_view(std::size_t(i))];
  const auto s = solve(bchi);
  const auto t = solve(bone);
  double ssum = 0, tsum = 0;
  for (localint i = 0; i < n; ++i) {
    ssum += s[std::size_t(i)];
    tsum += t[std::size_t(i)];
  }
  const double mu = ssum / tsum;

  for (localint i = 0; i < n; ++i) {
    const double q_dense = s[std::size_t(i)] - mu * t[std::size_t(i)];
    EXPECT_NEAR(sim.atom.k_q.h_view(std::size_t(i)), q_dense, 1e-6)
        << "atom " << i;
  }
}

}  // namespace
}  // namespace mlk::reaxff
