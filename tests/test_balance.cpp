// Property tests for the decomposition/migration path
// (docs/DECOMPOSITION.md): RCB cut computation, non-uniform cut
// installation, iterated-exchange migration, and the spatial atom sorter.
//
// The randomized harness sweeps >= 100 seeded configurations of random
// non-uniform densities x random cut sequences and asserts the invariants
// that make sort/balance safe to enable on any run:
//   * rcb_cuts always yields a valid partition (ascending, spanning,
//     min-width respected) and hits the weight quantiles when unclamped;
//   * migration is an exact ownership partition — every atom owned by
//     exactly one rank, none lost or duplicated, payloads (v = f(tag))
//     bit-preserved through any number of hops;
//   * sort permutations are bijections, the binned (counting-sort) builder
//     reproduces the scalar reference permutation exactly, and sorting is
//     idempotent.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <numeric>
#include <vector>

#include "comm/decomposition.hpp"
#include "comm/simmpi.hpp"
#include "engine/atom_sort.hpp"
#include "engine/atom_vec_kokkos.hpp"
#include "engine/balance.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace mlk {
namespace {

// ------------------------------------------------------------------ rcb_cuts

/// Piecewise-linear CDF of `w` over [lo, hi] evaluated at x — the same
/// measure rcb_cuts bisects, recomputed independently here.
double cdf(const std::vector<double>& w, double lo, double hi, double x) {
  const double bin = (hi - lo) / double(w.size());
  double acc = 0.0;
  for (std::size_t b = 0; b < w.size(); ++b) {
    const double blo = lo + double(b) * bin;
    if (x >= blo + bin) {
      acc += w[b];
    } else if (x > blo) {
      acc += w[b] * (x - blo) / bin;
      break;
    } else {
      break;
    }
  }
  return acc;
}

void expect_valid_cuts(const std::vector<double>& cuts, int np, double lo,
                       double hi, double min_width) {
  ASSERT_EQ(cuts.size(), std::size_t(np) + 1);
  EXPECT_EQ(cuts.front(), lo);
  EXPECT_EQ(cuts.back(), hi);
  for (int i = 0; i < np; ++i) {
    EXPECT_LT(cuts[std::size_t(i)], cuts[std::size_t(i) + 1]);
    EXPECT_GE(cuts[std::size_t(i) + 1] - cuts[std::size_t(i)],
              min_width * (1.0 - 1e-12))
        << "slab " << i << " thinner than min_width";
  }
}

TEST(RcbCuts, RandomWeightsHundredConfigsAlwaysValid) {
  // 100 seeded configs: random rank counts, boxes, bin counts, and weight
  // profiles with zero bins and heavy spikes (the droplet's vacuum + core).
  for (int seed = 1; seed <= 100; ++seed) {
    RanPark rng(17 * seed + 1);
    const int np = 1 + int(rng.uniform() * 8.0);
    const double lo = -20.0 * rng.uniform();
    const double hi = lo + 5.0 + 45.0 * rng.uniform();
    const int nbins = 4 + int(rng.uniform() * 256.0);
    std::vector<double> w(std::size_t(nbins), 0.0);
    for (double& wi : w) {
      const double u = rng.uniform();
      wi = u < 0.3 ? 0.0 : (u < 0.9 ? rng.uniform() : 100.0 * rng.uniform());
    }
    const double min_width = (hi - lo) / (double(np) * (2.0 + 8.0 * rng.uniform()));
    const auto cuts = rcb_cuts(w, np, lo, hi, min_width);
    expect_valid_cuts(cuts, np, lo, hi, min_width);
  }
}

TEST(RcbCuts, HitsWeightQuantilesWhenUnclamped) {
  // With strictly positive weights and a tiny min_width the clamps never
  // bind, so every interior cut must land exactly on its weight quantile
  // (under the piecewise-linear bin measure both sides use).
  for (int seed = 1; seed <= 40; ++seed) {
    RanPark rng(23 * seed + 5);
    const int np = 2 + int(rng.uniform() * 6.0);
    const double lo = 0.0, hi = 10.0 + 30.0 * rng.uniform();
    std::vector<double> w(64);
    for (double& wi : w) wi = 0.05 + rng.uniform();
    const double total = std::accumulate(w.begin(), w.end(), 0.0);
    const auto cuts = rcb_cuts(w, np, lo, hi, (hi - lo) * 1e-6);
    expect_valid_cuts(cuts, np, lo, hi, 0.0);
    for (int i = 1; i < np; ++i)
      EXPECT_NEAR(cdf(w, lo, hi, cuts[std::size_t(i)]),
                  total * double(i) / double(np), 1e-9 * total)
          << "seed " << seed << " cut " << i;
  }
}

TEST(RcbCuts, EmptyOrZeroWeightsFallBackToUniform) {
  const auto uniform = uniform_cuts(4, 0.0, 8.0);
  EXPECT_EQ(rcb_cuts({}, 4, 0.0, 8.0, 0.5), uniform);
  EXPECT_EQ(rcb_cuts(std::vector<double>(16, 0.0), 4, 0.0, 8.0, 0.5), uniform);
}

TEST(RcbCuts, MinWidthMustFit) {
  // np slabs of min_width each must fit in the span.
  EXPECT_THROW(rcb_cuts(std::vector<double>(8, 1.0), 4, 0.0, 1.0, 0.5), Error);
}

TEST(UniformCuts, BitwiseMatchesDecomposeSubBox) {
  // The historical sub-box bounds and the cut-plane representation must be
  // the same doubles, or enabling the cuts machinery would perturb every
  // existing multirank trajectory.
  Domain d;
  d.set_box(-1.5, 7.5, 0.0, 3.0, 2.0, 11.0);
  for (int nranks : {1, 2, 4, 6, 8}) {
    for (int rank = 0; rank < nranks; ++rank) {
      d.decompose(rank, nranks);
      for (int k = 0; k < 3; ++k) {
        const int c = d.grid().coord[k];
        ASSERT_EQ(d.cuts(k).size(), std::size_t(d.grid().np[k]) + 1);
        EXPECT_EQ(d.sublo[k], d.cuts(k)[std::size_t(c)]);
        EXPECT_EQ(d.subhi[k], d.cuts(k)[std::size_t(c) + 1]);
      }
    }
  }
}

TEST(DomainCuts, SetCutsValidatesAndRederivesSubBox) {
  Domain d;
  d.set_box(0.0, 10.0, 0.0, 10.0, 0.0, 10.0);
  d.decompose(1, 2);  // 1x1x2 grid on a cube: z is the split dimension
  ASSERT_EQ(d.grid().np[2], 2);
  d.set_cuts(2, {0.0, 3.25, 10.0});
  EXPECT_EQ(d.sublo[2], 3.25);
  EXPECT_EQ(d.subhi[2], 10.0);
  EXPECT_THROW(d.set_cuts(2, {0.0, 10.0}), Error);          // wrong count
  EXPECT_THROW(d.set_cuts(2, {0.0, 12.0, 10.0}), Error);    // not ascending
  EXPECT_THROW(d.set_cuts(2, {1.0, 3.0, 10.0}), Error);     // doesn't span
}

// ------------------------------------------------------- migration partition

double vel_of(tagint tag, int d) { return double(tag) * 0.001 + double(d); }

/// One randomized migration configuration: `nranks` ranks, clustered +
/// uniform random density, followed by `rounds` random RCB cut installs,
/// each migrated and checked for exact ownership partition.
void migration_property_case(int nranks, int seed, int rounds) {
  init_all();
  const double L = 24.0;
  const tagint N = 240;
  std::mutex mu;
  std::map<tagint, int> owner_of;  // tag -> owning rank (exactly one)
  bool duplicate = false;
  bool payload_ok = true;
  bool all_inside = true;

  simmpi::World world(nranks);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.comm.mpi = &comm;
    sim.domain.set_box(0, L, 0, L, 0, L);
    sim.domain.decompose(comm.rank(), comm.size());
    sim.atom.set_ntypes(1);

    // Every rank walks the same RNG stream, so all ranks agree on every
    // position (and on the cut weights below) without communication.
    RanPark rng(seed);
    const int nclusters = 1 + int(rng.uniform() * 3.0);
    double center[3][3], width[3];
    for (int c = 0; c < nclusters; ++c) {
      for (int d = 0; d < 3; ++d) center[c][d] = L * rng.uniform();
      width[c] = 0.5 + 3.0 * rng.uniform();
    }
    for (tagint t = 1; t <= N; ++t) {
      double x[3];
      if (rng.uniform() < 0.8) {  // clustered: the non-uniform density
        const int c = int(rng.uniform() * double(nclusters));
        for (int d = 0; d < 3; ++d)
          x[d] = center[c][d] + width[c] * rng.gaussian();
      } else {  // uniform tail
        for (int d = 0; d < 3; ++d) x[d] = L * rng.uniform();
      }
      sim.domain.remap(x);
      if (sim.domain.inside_subbox(x)) {
        const localint i = sim.atom.add_atom(1, t, x[0], x[1], x[2]);
        for (int d = 0; d < 3; ++d)
          sim.atom.k_v.h_view(std::size_t(i), std::size_t(d)) = vel_of(t, d);
      }
    }
    sim.atom.modified<kk::Host>(V_MASK);
    sim.atom.natoms = N;

    for (int round = 0; round < rounds; ++round) {
      // Random RCB cuts per split dimension from a random weight profile —
      // identical on every rank (same stream).
      for (int d = 0; d < 3; ++d) {
        const int np = sim.domain.grid().np[d];
        std::vector<double> w(32);
        for (double& wi : w)
          wi = rng.uniform() < 0.3 ? 0.0 : 10.0 * rng.uniform();
        if (np == 1) continue;  // draw happened: streams stay aligned
        sim.domain.set_cuts(d, rcb_cuts(w, np, 0.0, L, 1.0));
      }
      sim.comm.migrate(sim.atom, sim.domain);

      sim.atom.sync<kk::Host>(X_MASK);
      for (localint i = 0; i < sim.atom.nlocal; ++i) {
        const double xi[3] = {sim.atom.k_x.h_view(std::size_t(i), 0),
                              sim.atom.k_x.h_view(std::size_t(i), 1),
                              sim.atom.k_x.h_view(std::size_t(i), 2)};
        if (!sim.domain.inside_subbox(xi)) all_inside = false;
      }
    }

    // Gather the final ownership map; any tag seen twice is a duplication.
    sim.atom.sync<kk::Host>(X_MASK | V_MASK | TAG_MASK);
    std::lock_guard<std::mutex> lk(mu);
    for (localint i = 0; i < sim.atom.nlocal; ++i) {
      const tagint t = sim.atom.k_tag.h_view(std::size_t(i));
      if (!owner_of.emplace(t, comm.rank()).second) duplicate = true;
      for (int d = 0; d < 3; ++d)
        if (sim.atom.k_v.h_view(std::size_t(i), std::size_t(d)) !=
            vel_of(t, d))
          payload_ok = false;
    }
  });

  EXPECT_FALSE(duplicate) << "an atom is owned by more than one rank";
  EXPECT_EQ(owner_of.size(), std::size_t(N)) << "atoms lost in migration";
  EXPECT_TRUE(payload_ok) << "per-atom payload corrupted in flight";
  EXPECT_TRUE(all_inside) << "migrate left an atom outside its sub-box";
}

TEST(Migrate, RandomDensitiesTimesRandomCutsExactPartition) {
  // 36 worlds x 3 cut rounds each = 108 randomized decomposition
  // configurations across 2/3/4-rank grids.
  for (int seed = 1; seed <= 12; ++seed) {
    migration_property_case(2, 1000 + seed, 3);
    migration_property_case(3, 2000 + seed, 3);
    migration_property_case(4, 3000 + seed, 3);
  }
}

TEST(Migrate, MultiHopConvergesAcrossFourRankGrid) {
  // Shrink rank 0's slab so atoms must cross several ranks to get home —
  // exercises the iterated-exchange convergence loop, not just one hop.
  init_all();
  const double L = 64.0;
  std::mutex mu;
  std::map<tagint, int> owner_of;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.comm.mpi = &comm;
    sim.domain.set_box(0, L, 0, 4.0, 0, 4.0);  // long box: 4x1x1 grid
    sim.domain.decompose(comm.rank(), comm.size());
    ASSERT_EQ(sim.domain.grid().np[0], 4);
    sim.atom.set_ntypes(1);
    // All atoms start on rank 0 (x < 4), most belong at the far end.
    for (tagint t = 1; t <= 64; ++t) {
      const double x[3] = {double(t % 16) * 0.24, 1.0, 1.0};
      if (sim.domain.inside_subbox(x)) sim.atom.add_atom(1, t, x[0], x[1], x[2]);
    }
    sim.atom.natoms = 64;
    // New cuts squeeze rank 0 into [0, 1.2): its atoms above 1.2 must hop
    // up to 3 ranks to the right.
    sim.domain.set_cuts(0, {0.0, 1.2, 2.4, 3.6, L});
    sim.comm.migrate(sim.atom, sim.domain);
    sim.atom.sync<kk::Host>(X_MASK | TAG_MASK);
    std::lock_guard<std::mutex> lk(mu);
    for (localint i = 0; i < sim.atom.nlocal; ++i) {
      const double xi[3] = {sim.atom.k_x.h_view(std::size_t(i), 0),
                            sim.atom.k_x.h_view(std::size_t(i), 1),
                            sim.atom.k_x.h_view(std::size_t(i), 2)};
      EXPECT_TRUE(sim.domain.inside_subbox(xi));
      owner_of.emplace(sim.atom.k_tag.h_view(std::size_t(i)), comm.rank());
    }
  });
  EXPECT_EQ(owner_of.size(), 64u);
}

// ------------------------------------------------------------- atom sorting

/// Serial random system for permutation tests; returns tag -> (x, v).
std::map<tagint, std::array<double, 6>> fill_random(Simulation& sim,
                                                    int seed, int n) {
  const double L = 12.0;
  sim.domain.set_box(0, L, 0, L, 0, L);
  sim.atom.set_ntypes(1);
  RanPark rng(seed);
  std::map<tagint, std::array<double, 6>> ref;
  for (tagint t = 1; t <= n; ++t) {
    double x[3];
    for (double& c : x) c = L * rng.uniform();
    const localint i = sim.atom.add_atom(1, t, x[0], x[1], x[2]);
    std::array<double, 6> rec;
    for (int d = 0; d < 3; ++d) {
      sim.atom.k_v.h_view(std::size_t(i), std::size_t(d)) = vel_of(t, d);
      rec[std::size_t(d)] = x[d];
      rec[std::size_t(3 + d)] = vel_of(t, d);
    }
    ref[t] = rec;
  }
  sim.atom.modified<kk::Host>(V_MASK);
  sim.atom.natoms = n;
  return ref;
}

TEST(AtomSort, PermutationBijectionAndBinnedEqualsScalarHundredSeeds) {
  init_all();
  for (int seed = 1; seed <= 100; ++seed) {
    Simulation sim;
    RanPark rng(7777 + seed);
    const int n = 20 + int(rng.uniform() * 180.0);
    const double bin_width = 0.6 + 3.0 * rng.uniform();
    fill_random(sim, seed, n);

    const auto scalar =
        AtomSorter::permutation_scalar(sim.atom, sim.domain, bin_width);
    const auto binned =
        AtomSorter::permutation_binned(sim.atom, sim.domain, bin_width);
    ASSERT_EQ(scalar.size(), std::size_t(n));
    // The counting-sort builder must reproduce the stable-sort reference
    // permutation exactly — the sort path can never change the trajectory.
    EXPECT_EQ(scalar, binned) << "seed " << seed;
    // Bijection over [0, n).
    auto sorted = scalar;
    std::sort(sorted.begin(), sorted.end());
    for (localint i = 0; i < localint(n); ++i)
      ASSERT_EQ(sorted[std::size_t(i)], i) << "seed " << seed;
  }
}

TEST(AtomSort, ReorderPreservesPerTagStateAndIsIdempotent) {
  init_all();
  for (int seed = 1; seed <= 10; ++seed) {
    Simulation sim;
    const auto ref = fill_random(sim, 31 * seed, 150);
    const double bin_width = 1.7;

    const auto perm =
        AtomSorter::permutation_scalar(sim.atom, sim.domain, bin_width);
    AtomVecKokkos::reorder_owned(sim.atom, perm);

    // Per-tag association intact, bitwise.
    sim.atom.sync<kk::Host>(X_MASK | V_MASK | TAG_MASK);
    for (localint i = 0; i < sim.atom.nlocal; ++i) {
      const tagint t = sim.atom.k_tag.h_view(std::size_t(i));
      const auto it = ref.find(t);
      ASSERT_NE(it, ref.end());
      for (std::size_t d = 0; d < 3; ++d) {
        EXPECT_EQ(sim.atom.k_x.h_view(std::size_t(i), d), it->second[d]);
        EXPECT_EQ(sim.atom.k_v.h_view(std::size_t(i), d), it->second[3 + d]);
      }
    }

    // Already bin-major + stable: a second permutation is the identity.
    const auto again =
        AtomSorter::permutation_scalar(sim.atom, sim.domain, bin_width);
    for (localint i = 0; i < localint(again.size()); ++i)
      ASSERT_EQ(again[std::size_t(i)], i) << "sort is not idempotent";
  }
}

TEST(AtomSort, MaybeSortHonorsCadence) {
  init_all();
  Simulation sim;
  fill_random(sim, 5, 40);
  sim.sorter.every = 3;
  EXPECT_FALSE(sim.sorter.maybe_sort(sim.atom, sim.domain, 1.5));
  EXPECT_FALSE(sim.sorter.maybe_sort(sim.atom, sim.domain, 1.5));
  EXPECT_TRUE(sim.sorter.maybe_sort(sim.atom, sim.domain, 1.5));
  EXPECT_EQ(sim.sorter.nsorts, 1);
  EXPECT_EQ(sim.sorter.builds_since_sort, 0);
  Simulation off;
  fill_random(off, 6, 40);
  EXPECT_FALSE(off.sorter.maybe_sort(off.atom, off.domain, 1.5));  // every=0
}

// ----------------------------------------------------------------- balancer

TEST(Balancer, ImbalanceSerialIsOne) {
  init_all();
  Simulation sim;
  fill_random(sim, 9, 30);
  EXPECT_EQ(Balancer::imbalance(sim.atom, nullptr), 1.0);
}

TEST(Balancer, RecomputeCutsEquilibratesADroplet) {
  // Two ranks, all atoms in the lower-z half: static cuts leave rank 1
  // nearly empty; one recompute + migrate must equilibrate the counts.
  init_all();
  const double L = 20.0;
  std::mutex mu;
  std::vector<localint> counts(2, 0);
  double imb_before = 0.0, imb_after = 0.0;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    sim.comm.mpi = &comm;
    sim.domain.set_box(0, L, 0, L, 0, L);
    sim.domain.decompose(comm.rank(), comm.size());
    sim.atom.set_ntypes(1);
    RanPark rng(4242);
    for (tagint t = 1; t <= 400; ++t) {
      double x[3] = {L * rng.uniform(), L * rng.uniform(),
                     0.45 * L * rng.uniform()};  // droplet: z in [0, 0.45 L)
      if (sim.domain.inside_subbox(x)) sim.atom.add_atom(1, t, x[0], x[1], x[2]);
    }
    sim.atom.natoms = 400;

    const double before = Balancer::imbalance(sim.atom, &comm);
    Balancer bal;
    ASSERT_TRUE(bal.recompute_cuts(sim.atom, sim.domain, &comm,
                                   /*min_width=*/2.0));
    sim.comm.migrate(sim.atom, sim.domain);
    const double after = Balancer::imbalance(sim.atom, &comm);

    std::lock_guard<std::mutex> lk(mu);
    counts[std::size_t(comm.rank())] = sim.atom.nlocal;
    if (comm.rank() == 0) {
      imb_before = before;
      imb_after = after;
    }
  });
  EXPECT_GT(imb_before, 1.7) << "droplet was not imbalanced to begin with";
  EXPECT_LT(imb_after, 1.15) << "rebalance failed to equilibrate";
  EXPECT_EQ(counts[0] + counts[1], 400);
}

}  // namespace
}  // namespace mlk
