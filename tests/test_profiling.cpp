// Profiling hook-layer tests: event begin/end balance (including under
// exceptions), kernel-id plumbing, sharded launch counting from many
// threads, the built-in tools (KernelTimer stats, MemorySpaceTracker
// high-water marks, ChromeTrace well-formed JSON), and the `profile` /
// `trace` input-command round-trips.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "kokkos/core.hpp"
#include "kokkos/profiling.hpp"
#include "test_helpers.hpp"
#include "tools/chrome_trace.hpp"
#include "tools/json.hpp"
#include "tools/kernel_timer.hpp"
#include "tools/memory_tracker.hpp"

namespace mlk {
namespace {

namespace fs = std::filesystem;
namespace prof = kk::profiling;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Records every callback it receives (thread-safe: worker-chunk events fire
/// on pool threads).
class RecordingTool : public prof::Tool {
 public:
  struct Kernel {
    prof::KernelType type;
    std::string name;
    bool device;
    std::uint64_t items;
    std::uint64_t kid;
  };

  void begin_parallel_for(const std::string& name, bool device,
                          std::uint64_t items, std::uint64_t kid) override {
    add(prof::KernelType::ParallelFor, name, device, items, kid);
  }
  void end_parallel_for(std::uint64_t kid) override { add_end(kid); }
  void begin_parallel_reduce(const std::string& name, bool device,
                             std::uint64_t items, std::uint64_t kid) override {
    add(prof::KernelType::ParallelReduce, name, device, items, kid);
  }
  void end_parallel_reduce(std::uint64_t kid) override { add_end(kid); }
  void begin_parallel_scan(const std::string& name, bool device,
                           std::uint64_t items, std::uint64_t kid) override {
    add(prof::KernelType::ParallelScan, name, device, items, kid);
  }
  void end_parallel_scan(std::uint64_t kid) override { add_end(kid); }

  void push_region(const std::string& name) override {
    std::lock_guard<std::mutex> lk(mu_);
    pushes.push_back(name);
  }
  void pop_region(const std::string& name) override {
    std::lock_guard<std::mutex> lk(mu_);
    pops.push_back(name);
  }

  void begin_worker_chunk(std::uint64_t kid, int, std::uint64_t,
                          std::uint64_t) override {
    std::lock_guard<std::mutex> lk(mu_);
    chunk_begins.push_back(kid);
  }
  void end_worker_chunk(std::uint64_t kid, int) override {
    std::lock_guard<std::mutex> lk(mu_);
    chunk_ends.push_back(kid);
  }

  std::vector<Kernel> begins;
  std::vector<std::uint64_t> ends;
  std::vector<std::string> pushes, pops;
  std::vector<std::uint64_t> chunk_begins, chunk_ends;

 private:
  void add(prof::KernelType t, const std::string& name, bool device,
           std::uint64_t items, std::uint64_t kid) {
    std::lock_guard<std::mutex> lk(mu_);
    begins.push_back({t, name, device, items, kid});
  }
  void add_end(std::uint64_t kid) {
    std::lock_guard<std::mutex> lk(mu_);
    ends.push_back(kid);
  }
  std::mutex mu_;
};

/// Registers a tool for the test's lifetime.
template <class T>
struct Registered {
  std::shared_ptr<T> tool = std::make_shared<T>();
  Registered() { prof::register_tool(tool); }
  ~Registered() { prof::deregister_tool(tool); }
  T* operator->() { return tool.get(); }
};

TEST(ProfilingEvents, KernelBeginsAndEndsBalanceWithMatchingIds) {
  Registered<RecordingTool> rec;

  kk::parallel_for("prof::for_host", kk::RangePolicy<kk::Host>(0, 16),
                   [](std::size_t) {});
  kk::parallel_for("prof::for_dev", kk::RangePolicy<kk::Device>(0, 1024),
                   [](std::size_t) {});
  double sum = 0.0;
  kk::parallel_reduce("prof::reduce", kk::RangePolicy<kk::Host>(0, 8),
                      [](std::size_t i, double& s) { s += double(i); }, sum);

  ASSERT_EQ(rec->begins.size(), 3u);
  ASSERT_EQ(rec->ends.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(rec->begins[i].kid, 0u) << "kernel ids must be nonzero";
    EXPECT_EQ(rec->begins[i].kid, rec->ends[i])
        << "end must carry the begin's id (no interleaving here)";
  }
  EXPECT_EQ(rec->begins[0].name, "prof::for_host");
  EXPECT_FALSE(rec->begins[0].device);
  EXPECT_EQ(rec->begins[0].items, 16u);
  EXPECT_EQ(rec->begins[0].type, prof::KernelType::ParallelFor);
  EXPECT_TRUE(rec->begins[1].device);
  EXPECT_EQ(rec->begins[2].type, prof::KernelType::ParallelReduce);

  // Device dispatch ran on pool workers: every chunk begin is matched by an
  // end and carries the device kernel's id.
  ASSERT_FALSE(rec->chunk_begins.empty());
  EXPECT_EQ(rec->chunk_begins.size(), rec->chunk_ends.size());
  for (const std::uint64_t kid : rec->chunk_begins)
    EXPECT_EQ(kid, rec->begins[1].kid);
}

TEST(ProfilingEvents, ScanEmitsScanCallbacks) {
  Registered<RecordingTool> rec;
  std::vector<int> vals(64, 1);
  long total = 0;
  kk::parallel_scan("prof::scan", kk::RangePolicy<kk::Host>(0, vals.size()),
                    [&](std::size_t i, long& upd, bool final) {
                      if (final) vals[i] = int(upd);
                      upd += 1;
                    },
                    total);
  ASSERT_EQ(rec->begins.size(), 1u);
  EXPECT_EQ(rec->begins[0].type, prof::KernelType::ParallelScan);
  EXPECT_EQ(rec->ends.size(), 1u);
}

TEST(ProfilingEvents, RegionsBalanceUnderExceptions) {
  Registered<RecordingTool> rec;
  try {
    prof::ScopedRegion outer("outer");
    prof::ScopedRegion inner("inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  ASSERT_EQ(rec->pushes.size(), 2u);
  ASSERT_EQ(rec->pops.size(), 2u);
  // LIFO unwinding: inner pops first, and pop resolves the pushed name.
  EXPECT_EQ(rec->pops[0], "inner");
  EXPECT_EQ(rec->pops[1], "outer");
}

TEST(ProfilingEvents, KernelEndBalancesWhenFunctorThrows) {
  Registered<RecordingTool> rec;
  EXPECT_THROW(
      kk::parallel_for("prof::throws", kk::RangePolicy<kk::Host>(0, 4),
                       [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  ASSERT_EQ(rec->begins.size(), 1u);
  ASSERT_EQ(rec->ends.size(), 1u);
  EXPECT_EQ(rec->begins[0].kid, rec->ends[0]);
}

TEST(ProfilingEvents, NoToolsMeansKernelIdZero) {
  ASSERT_FALSE(prof::tooling_active());
  const std::uint64_t kid = prof::begin_kernel(
      prof::KernelType::ParallelFor, "prof::untooled", false, 1);
  EXPECT_EQ(kid, 0u);
  prof::end_kernel(prof::KernelType::ParallelFor, kid);  // must be a no-op
}

TEST(ProfilingCounting, ShardsMergeAcrossThreads) {
  const bool prev = prof::set_enabled(true);
  prof::reset();
  constexpr int kThreads = 4, kPer = 2500;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t)
    ts.emplace_back([] {
      for (int i = 0; i < kPer; ++i)
        prof::record_launch("prof::sharded", /*is_device=*/i % 2 == 0, 10);
    });
  for (auto& t : ts) t.join();

  const auto snap = prof::snapshot();
  const auto it = snap.find("prof::sharded");
  ASSERT_NE(it, snap.end());
  EXPECT_EQ(it->second.launches, std::uint64_t(kThreads) * kPer);
  EXPECT_EQ(it->second.device_launches, std::uint64_t(kThreads) * kPer / 2);
  EXPECT_EQ(it->second.total_items, std::uint64_t(kThreads) * kPer * 10);
  EXPECT_GE(prof::total_launches(), std::uint64_t(kThreads) * kPer);
  prof::reset();
  prof::set_enabled(prev);
}

TEST(ProfilingCounting, DisabledRecordsNothing) {
  const bool prev = prof::set_enabled(false);
  prof::reset();
  kk::parallel_for("prof::disabled", kk::RangePolicy<kk::Host>(0, 4),
                   [](std::size_t) {});
  EXPECT_EQ(prof::snapshot().count("prof::disabled"), 0u);
  prof::set_enabled(prev);
}

TEST(KernelTimerTool, AccumulatesPerKernelStats) {
  Registered<tools::KernelTimer> timer;
  for (int r = 0; r < 5; ++r)
    kk::parallel_for("prof::timed", kk::RangePolicy<kk::Host>(0, 100),
                     [](std::size_t) {});
  const auto stats = timer->stats();
  const auto it = stats.find("prof::timed");
  ASSERT_NE(it, stats.end());
  const auto& s = it->second;
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.total_items, 500u);
  EXPECT_GT(s.total_s, 0.0);
  EXPECT_LE(s.min_s, s.mean_s());
  EXPECT_LE(s.mean_s(), s.max_s);
  EXPECT_GT(s.items_per_s(), 0.0);
  EXPECT_NE(timer->text_report().find("prof::timed"), std::string::npos);

  // The JSON fragment is parseable and carries the same count.
  const json::Value v = json::parse(timer->json_fragment());
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v["prof::timed"]["count"].number, 5.0);
  EXPECT_GT(v["prof::timed"]["mean_s"].number, 0.0);
}

TEST(MemoryTrackerTool, HighWaterMarkAcrossCreateDestroyRealloc) {
  Registered<tools::MemorySpaceTracker> mem;
  constexpr std::uint64_t kA = 1000 * sizeof(double);
  constexpr std::uint64_t kB = 3000 * sizeof(double);
  {
    kk::View<double, 1> a("prof::a", 1000);  // LayoutRight -> "Host"
    auto s = mem->stats().at("Host");
    EXPECT_EQ(s.live_bytes, kA);
    EXPECT_EQ(s.live_allocs, 1u);
    EXPECT_EQ(s.high_water_bytes, kA);
    {
      kk::View<double, 1> b("prof::b", 3000);
      s = mem->stats().at("Host");
      EXPECT_EQ(s.live_bytes, kA + kB);
      EXPECT_EQ(s.high_water_bytes, kA + kB);
    }
    s = mem->stats().at("Host");
    EXPECT_EQ(s.live_bytes, kA);
    EXPECT_EQ(s.high_water_bytes, kA + kB) << "HWM survives deallocation";

    // Device-layout views land in their own space bucket.
    kk::View<double, 1, kk::LayoutLeft> d("prof::dev", 500);
    EXPECT_EQ(mem->stats().at("Device").live_bytes, 500 * sizeof(double));
  }
  const auto s = mem->stats().at("Host");
  EXPECT_EQ(s.live_bytes, 0u);
  EXPECT_EQ(s.live_allocs, 0u);
  EXPECT_EQ(s.alloc_count, 2u);
  EXPECT_EQ(s.dealloc_count, 2u);
  EXPECT_EQ(s.high_water_bytes, kA + kB);
  EXPECT_TRUE(mem->live_allocations().empty());

  const json::Value v = json::parse(mem->json_fragment());
  EXPECT_DOUBLE_EQ(v["Host"]["high_water_bytes"].number, double(kA + kB));
}

TEST(ChromeTraceTool, MeltTraceIsWellFormedAndComplete) {
  const fs::path path = fs::temp_directory_path() / "mlk_test_melt.trace.json";
  fs::remove(path);
  {
    auto sim = testing::make_lj_system(3, 0.8442, 0.05, "lj/cut/kk");
    Input in(*sim);
    in.line("fix 1 all nve");
    in.line("trace " + path.string());
    EXPECT_THROW(in.line("trace other.json"), Error) << "double trace rejected";
    in.line("run 3");
    in.line("trace stop");
  }
  ASSERT_TRUE(fs::exists(path));
  const json::Value doc = json::parse(slurp(path));  // throws if malformed
  const json::Value& events = doc["traceEvents"];
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.arr.empty());

  int kernels = 0, regions = 0, deep_copies = 0;
  bool saw_verlet_force = false;
  for (const auto& e : events.arr) {
    const std::string& cat = e["cat"].str;
    if (cat.rfind("kernel", 0) == 0) ++kernels;
    if (cat == "region") {
      ++regions;
      if (e["name"].str == "Verlet::force") saw_verlet_force = true;
    }
    if (cat == "deep_copy") ++deep_copies;
  }
  EXPECT_GT(kernels, 0) << "trace must contain kernel spans";
  EXPECT_GT(regions, 0) << "trace must contain Verlet phase regions";
  EXPECT_TRUE(saw_verlet_force);
  EXPECT_GE(deep_copies, 1) << "trace must contain at least one deep copy";
  fs::remove(path);
}

TEST(ProfileCommand, RoundTripsThroughDump) {
  const fs::path path = fs::temp_directory_path() / "mlk_test_profile.json";
  fs::remove(path);
  {
    auto sim = testing::make_lj_system();
    Input in(*sim);
    in.line("fix 1 all nve");
    in.line("profile on");
    in.line("profile on");  // idempotent
    in.line("run 2");
    in.line("profile dump " + path.string());
    in.line("profile off");
    EXPECT_THROW(in.line("profile dump " + path.string()), Error)
        << "dump after off must fail";
  }
  ASSERT_TRUE(fs::exists(path));
  const json::Value doc = json::parse(slurp(path));
  ASSERT_TRUE(doc["kernels"].is_object());
  ASSERT_FALSE(doc["kernels"].obj.empty());
  for (const auto& [name, s] : doc["kernels"].obj) {
    EXPECT_TRUE(s["count"].is_number()) << name;
    EXPECT_TRUE(s["min_s"].is_number()) << name;
    EXPECT_TRUE(s["max_s"].is_number()) << name;
    EXPECT_TRUE(s["mean_s"].is_number()) << name;
  }
  ASSERT_TRUE(doc["memory"].is_object());
  EXPECT_TRUE(doc["memory"]["Host"]["high_water_bytes"].is_number());
  fs::remove(path);
}

}  // namespace
}  // namespace mlk
