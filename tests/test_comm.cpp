#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>

#include "engine/atom_vec_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

TEST(CommSerial, GhostCountMatchesShellGeometry) {
  // Perfect fcc lattice, no jitter: ghosts are atoms within cutghost of a
  // face, counted with multiplicity for edges (x2) and corners (x3 images).
  auto sim = make_lj_system(4, 0.8442, 0.0);
  const double cut = 2.8;
  sim->comm.cutghost = cut;
  sim->comm.borders(sim->atom, sim->domain);

  const auto x = sim->atom.k_x.h_view;
  const double L = sim->domain.prd(0);
  bigint expect = 0;
  for (localint i = 0; i < sim->atom.nlocal; ++i) {
    int mult = 1;
    for (int d = 0; d < 3; ++d) {
      const double xd = x(std::size_t(i), std::size_t(d));
      // One extra image per dimension within cut of either face.
      if (xd < cut || xd >= L - cut) mult *= 2;
    }
    expect += mult - 1;
  }
  EXPECT_EQ(bigint(sim->atom.nghost), expect);
}

TEST(CommSerial, GhostsAreExactPeriodicImages) {
  auto sim = make_lj_system(3, 0.8442, 0.07);
  sim->comm.cutghost = 2.8;
  sim->comm.borders(sim->atom, sim->domain);

  const auto x = sim->atom.k_x.h_view;
  const auto tag = sim->atom.k_tag.h_view;
  std::map<tagint, localint> owner;
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    owner[tag(std::size_t(i))] = i;

  for (localint g = sim->atom.nlocal; g < sim->atom.nall(); ++g) {
    auto it = owner.find(tag(std::size_t(g)));
    ASSERT_NE(it, owner.end());
    const localint o = it->second;
    for (int d = 0; d < 3; ++d) {
      const double diff = x(std::size_t(g), std::size_t(d)) -
                          x(std::size_t(o), std::size_t(d));
      const double L = sim->domain.prd(d);
      // Displacement must be a multiple of the box length (0 or ±L).
      const double k = diff / L;
      EXPECT_NEAR(k, std::round(k), 1e-12);
    }
  }
}

TEST(CommSerial, ForwardPositionsTracksOwnerMoves) {
  auto sim = make_lj_system(3, 0.8442, 0.0);
  sim->comm.cutghost = 2.8;
  sim->comm.borders(sim->atom, sim->domain);
  ASSERT_GT(sim->atom.nghost, 0);

  auto x = sim->atom.k_x.h_view;
  // Move every owned atom a little, then forward.
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    x(std::size_t(i), 0) += 0.01;
  sim->atom.modified<kk::Host>(X_MASK);
  sim->comm.forward_positions(sim->atom);

  const auto tag = sim->atom.k_tag.h_view;
  std::map<tagint, localint> owner;
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    owner[tag(std::size_t(i))] = i;
  for (localint g = sim->atom.nlocal; g < sim->atom.nall(); ++g) {
    const localint o = owner.at(tag(std::size_t(g)));
    const double L = sim->domain.prd(0);
    const double k = (x(std::size_t(g), 0) - x(std::size_t(o), 0)) / L;
    EXPECT_NEAR(k, std::round(k), 1e-12) << "ghost stale after forward";
  }
}

TEST(CommSerial, ReverseForcesConserveTotalAndLandOnOwners) {
  auto sim = make_lj_system(3, 0.8442, 0.0);
  sim->comm.cutghost = 2.8;
  sim->comm.borders(sim->atom, sim->domain);

  auto f = sim->atom.k_f.h_view;
  for (localint i = 0; i < sim->atom.nall(); ++i)
    for (int d = 0; d < 3; ++d) f(std::size_t(i), std::size_t(d)) = 0.0;
  // Put unit force on every ghost.
  for (localint g = sim->atom.nlocal; g < sim->atom.nall(); ++g)
    f(std::size_t(g), 0) = 1.0;
  sim->atom.modified<kk::Host>(F_MASK);
  const double total_before = double(sim->atom.nghost);

  sim->comm.reverse_forces(sim->atom);

  double total_owned = 0.0;
  for (localint i = 0; i < sim->atom.nlocal; ++i)
    total_owned += f(std::size_t(i), 0);
  EXPECT_NEAR(total_owned, total_before, 1e-9);
}

TEST(CommSerial, SubboxThinnerThanCutghostIsRejected) {
  auto sim = make_lj_system(1, 0.8442, 0.0);  // 1 fcc cell: tiny box
  sim->comm.cutghost = 100.0;
  EXPECT_THROW(sim->comm.setup(sim->domain), Error);
}

TEST(CommMulti, DecomposedGhostsMatchSerialEnergy) {
  // The same global configuration must give the same potential energy when
  // split across 2 ranks as in serial.
  init_all();
  const int cells = 4;
  double e_serial = 0.0;
  {
    auto sim = make_lj_system(cells, 0.8442, 0.05);
    e_serial = testing::total_pe(*sim);
  }

  simmpi::World world(2);
  std::vector<double> e_ranks(2, 0.0);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    Input in(sim);
    sim.thermo.print = false;
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    in.line("create_atoms 4 4 4 jitter 0.05 78123");
    in.line("mass 1 1.0");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    sim.setup();
    e_ranks[std::size_t(comm.rank())] =
        sim.pair->eng_vdwl;  // local share
  });
  EXPECT_NEAR(e_ranks[0] + e_ranks[1], e_serial, 1e-9 * std::abs(e_serial));
}

TEST(CommMulti, AtomCountsConservedAcrossExchange) {
  init_all();
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    Simulation sim;
    sim.mpi = &comm;
    Input in(sim);
    sim.thermo.print = false;
    in.line("units lj");
    in.line("lattice fcc 0.8442");
    in.line("create_atoms 4 4 4 jitter 0.05 78123");
    in.line("mass 1 1.0");
    in.line("velocity all create 2.0 12345");
    in.line("pair_style lj/cut 2.5");
    in.line("pair_coeff * * 1.0 1.0");
    in.line("fix 1 all nve");
    in.line("thermo 10");
    in.line("run 20");
    const bigint total = comm.allreduce_sum(bigint(sim.atom.nlocal));
    EXPECT_EQ(total, sim.atom.natoms);
  });
}

TEST(CommMulti, TrajectoryIdenticalAcrossDecompositions) {
  // Strong integration property: velocity creation is tag-seeded and the
  // halo/exchange machinery is exact, so the 30-step trajectory is
  // decomposition-independent (up to summation order).
  init_all();
  auto run_decomposed = [&](int nranks) {
    double etot = 0.0;
    std::mutex mu;
    simmpi::World world(nranks);
    world.run([&](simmpi::Comm& comm) {
      Simulation sim;
      sim.mpi = nranks > 1 ? &comm : nullptr;
      sim.thermo.print = false;
      Input in(sim);
      in.line("units lj");
      in.line("lattice fcc 0.8442");
      in.line("create_atoms 4 4 4 jitter 0.02 771");
      in.line("mass 1 1.0");
      in.line("velocity all create 1.44 87287");
      in.line("pair_style lj/cut 2.5");
      in.line("pair_coeff * * 1.0 1.0");
      in.line("fix 1 all nve");
      in.line("thermo 30");
      in.line("run 30");
      const double e = sim.thermo.rows().back().etotal;
      std::lock_guard<std::mutex> lk(mu);
      if (comm.rank() == 0) etot = e;
    });
    return etot;
  };
  // Identical up to floating-point summation order (per-rank force
  // accumulation order differs), i.e. ~1e-13 relative.
  const double e1 = run_decomposed(1);
  EXPECT_NEAR(run_decomposed(2), e1, 1e-11 * std::abs(e1));
  EXPECT_NEAR(run_decomposed(4), e1, 1e-11 * std::abs(e1));
  EXPECT_NEAR(run_decomposed(8), e1, 1e-11 * std::abs(e1));
}

TEST(AtomVecKokkos, DevicePackMatchesHostPack) {
  auto sim = make_lj_system(2, 0.8442, 0.05);
  std::vector<localint> send = {0, 3, 7, 11};
  auto host_buf = AtomVecKokkos::pack_positions_host(sim->atom, send, 1, 2.5);

  kk::View1D<int, kk::Device> d_send("send", send.size());
  for (std::size_t k = 0; k < send.size(); ++k) d_send(k) = send[k];
  auto dev_buf =
      AtomVecKokkos::pack_positions_device(sim->atom, d_send, 1, 2.5);

  ASSERT_EQ(dev_buf.extent(0), host_buf.size());
  for (std::size_t k = 0; k < host_buf.size(); ++k)
    EXPECT_DOUBLE_EQ(dev_buf(k), host_buf[k]);
}

TEST(AtomVecKokkos, DeviceUnpackRoundTrip) {
  auto sim = make_lj_system(2, 0.8442, 0.0);
  sim->comm.cutghost = 2.8;
  sim->comm.borders(sim->atom, sim->domain);
  ASSERT_GT(sim->atom.nghost, 2);

  const localint first = sim->atom.nlocal;
  kk::View1D<double, kk::Device> buf("buf", 6);
  for (std::size_t k = 0; k < 6; ++k) buf(k) = double(k) + 0.5;
  AtomVecKokkos::unpack_positions_device(sim->atom, buf, first);
  sim->atom.sync<kk::Host>(X_MASK);
  EXPECT_DOUBLE_EQ(sim->atom.k_x.h_view(std::size_t(first), 0), 0.5);
  EXPECT_DOUBLE_EQ(sim->atom.k_x.h_view(std::size_t(first) + 1, 2), 5.5);
}

}  // namespace
}  // namespace mlk
