#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   tests/run_tier1.sh            # RelWithDebInfo build in build/
#   tests/run_tier1.sh --asan     # AddressSanitizer build in build-asan/
#   tests/run_tier1.sh --filter 'BitwiseResume.*'   # subset via gtest filter
#
# Extra arguments after the flags are passed to cmake's configure step.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo/build"
cmake_args=()
gtest_filter=""

while [[ $# -gt 0 ]]; do
  case "$1" in
    --asan)
      build_dir="$repo/build-asan"
      cmake_args+=(-DMLK_SANITIZE=address)
      shift
      ;;
    --filter)
      gtest_filter="$2"
      shift 2
      ;;
    *)
      cmake_args+=("$1")
      shift
      ;;
  esac
done

cmake -B "$build_dir" -S "$repo" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"

if [[ -n "$gtest_filter" ]]; then
  "$build_dir/tests/minilmp_tests" --gtest_filter="$gtest_filter"
else
  ctest --test-dir "$build_dir" --output-on-failure
fi
