#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
#
#   tests/run_tier1.sh            # RelWithDebInfo build in build/
#   tests/run_tier1.sh --asan     # AddressSanitizer build in build-asan/
#   tests/run_tier1.sh --filter 'BitwiseResume.*'   # subset via gtest filter
#   tests/run_tier1.sh --profile  # observability smoke: traced melt run,
#                                 # trace JSON validated with validate_trace
#   tests/run_tier1.sh --overlap  # overlapped-Verlet smoke: traced melt with
#                                 # `overlap on`, per-instance tracks required
#   tests/run_tier1.sh --neigh-device  # device neighbor-build smoke: melt
#                                 # with MLK_NEIGH=device + overlap on, then
#                                 # the NeighDevice suite (incl. 2 ranks)
#   tests/run_tier1.sh --server   # batch-server smoke: 4 jobs multiplexed
#                                 # through the scheduler with cross-job
#                                 # fusion, then the Server* suite (isolation,
#                                 # restart-mid-batch, fairness)
#   tests/run_tier1.sh --telemetry # live-telemetry smoke: melt run with
#                                 # MLK_TELEMETRY streaming snapshots +
#                                 # NDJSON + counter tracks, then the
#                                 # telemetry suites (ring accounting,
#                                 # torn-read impossibility, hub lifecycle)
#   tests/run_tier1.sh --simd     # SIMD smoke: melt with MLK_SIMD off vs on
#                                 # (total energy compared per the tolerance
#                                 # policy), the Simd* suites, and the
#                                 # sanitized pack-layer build
#   tests/run_tier1.sh --balance  # decomposition smoke: droplet example with
#                                 # sort + balance rcb armed (imbalance
#                                 # breakdown + counter track), then the
#                                 # decomposition/migration property suites,
#                                 # the bitwise sort/balance sweep, and the
#                                 # balance restart round-trip
#
# Extra arguments after the flags are passed to cmake's configure step.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$repo/build"
cmake_args=()
gtest_filter=""
profile_smoke=0
overlap_smoke=0
neigh_device_smoke=0
server_smoke=0
telemetry_smoke=0
simd_smoke=0
balance_smoke=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --asan)
      build_dir="$repo/build-asan"
      cmake_args+=(-DMLK_SANITIZE=address)
      shift
      ;;
    --filter)
      gtest_filter="$2"
      shift 2
      ;;
    --profile)
      profile_smoke=1
      shift
      ;;
    --overlap)
      overlap_smoke=1
      shift
      ;;
    --neigh-device)
      neigh_device_smoke=1
      shift
      ;;
    --server)
      server_smoke=1
      shift
      ;;
    --telemetry)
      telemetry_smoke=1
      shift
      ;;
    --simd)
      simd_smoke=1
      shift
      ;;
    --balance)
      balance_smoke=1
      shift
      ;;
    *)
      cmake_args+=("$1")
      shift
      ;;
  esac
done

cmake -B "$build_dir" -S "$repo" "${cmake_args[@]}"
cmake --build "$build_dir" -j "$(nproc)"

if [[ "$profile_smoke" == 1 ]]; then
  # Run the melt example with the env-var trace hook enabled, then check the
  # emitted chrome://tracing file contains kernel spans, Verlet-phase region
  # spans, and at least one deep copy.
  scratch="$(mktemp -d)"
  trap 'rm -rf "$scratch"' EXIT
  (cd "$scratch" &&
   MLK_TRACE="$scratch/melt.trace.json" \
     "$build_dir/examples/run_script" "$repo/examples/in.melt")
  "$build_dir/tests/validate_trace" "$scratch/melt.trace.json"
  echo "profile smoke: OK"
elif [[ "$overlap_smoke" == 1 ]]; then
  # Run the melt example through the overlapped Verlet loop with tracing on,
  # then require the per-instance thread tracks (compute + comm
  # kk::DeviceInstance) to show up with spans in the trace.
  scratch="$(mktemp -d)"
  trap 'rm -rf "$scratch"' EXIT
  (cd "$scratch" &&
   MLK_TRACE="$scratch/melt_overlap.trace.json" \
     "$build_dir/examples/run_script" "$repo/examples/in.melt_overlap")
  "$build_dir/tests/validate_trace" --require-instance-tracks \
    "$scratch/melt_overlap.trace.json"
  echo "overlap smoke: OK"
elif [[ "$neigh_device_smoke" == 1 ]]; then
  # Run the overlapped melt example with the device neighbor-build path
  # (MLK_NEIGH=device, docs/NEIGHBOR.md) and tracing on; the trace must still
  # show the per-instance tracks — the device-built list feeds the same
  # overlapped force phase. Then the NeighDevice suite checks the device path
  # end to end: bitwise host-vs-device trajectories, serial and 2 simmpi
  # ranks, overlap off and on.
  scratch="$(mktemp -d)"
  trap 'rm -rf "$scratch"' EXIT
  (cd "$scratch" &&
   MLK_NEIGH=device MLK_TRACE="$scratch/melt_neigh_device.trace.json" \
     "$build_dir/examples/run_script" "$repo/examples/in.melt_overlap")
  "$build_dir/tests/validate_trace" --require-instance-tracks \
    "$scratch/melt_neigh_device.trace.json"
  "$build_dir/tests/minilmp_tests" --gtest_filter='NeighDevice*'
  echo "neigh-device smoke: OK"
elif [[ "$server_smoke" == 1 ]]; then
  # Submit 4 jobs through the batch scheduler (server_demo verifies correct,
  # energy-conserving thermo per job and that cross-job fused launches
  # happened), then the full Server* suite: bitwise per-job isolation (solo
  # vs co-scheduled vs restart-mid-batch), fairness, failure containment.
  "$build_dir/examples/server_demo"
  "$build_dir/tests/minilmp_tests" --gtest_filter='Server*'
  echo "server smoke: OK"
elif [[ "$telemetry_smoke" == 1 ]]; then
  # Live-telemetry smoke (tests/telemetry_smoke.sh): the melt example with
  # MLK_TELEMETRY streaming JSON snapshots + an NDJSON tail + in-situ
  # RDF/MSD, trace counter tracks validated, then the telemetry unit suites
  # (ring drop-oldest exactness, torn-read impossibility, hub lifecycle).
  bash "$repo/tests/telemetry_smoke.sh" \
    "$build_dir/examples/run_script" "$build_dir/tests/validate_trace" \
    "$repo/examples/in.melt"
  "$build_dir/tests/minilmp_tests" \
    --gtest_filter='TelemetryRing*:TelemetryHub*:CoordCapture*:Insitu*'
  echo "telemetry smoke: OK"
elif [[ "$simd_smoke" == 1 ]]; then
  # SIMD smoke (docs/VECTORIZATION.md): the melt example twice — scalar
  # reference vs MLK_SIMD=on pack path — comparing the thermo total-energy
  # column at 1e-6 relative (NVE conserves it, so any masking or remainder
  # bug shows up as drift). Then the Simd* unit/equivalence suites and the
  # sanitized standalone build of the pack layer.
  scratch="$(mktemp -d)"
  trap 'rm -rf "$scratch"' EXIT
  (cd "$scratch" && MLK_SIMD=off \
     "$build_dir/examples/run_script" "$repo/examples/in.melt" \
     > "$scratch/melt_scalar.txt")
  (cd "$scratch" && MLK_SIMD=on \
     "$build_dir/examples/run_script" "$repo/examples/in.melt" \
     > "$scratch/melt_simd.txt")
  awk '/^ *[0-9]+ +-?[0-9]/ {print $5}' "$scratch/melt_scalar.txt" \
    > "$scratch/etot_scalar.txt"
  awk '/^ *[0-9]+ +-?[0-9]/ {print $5}' "$scratch/melt_simd.txt" \
    > "$scratch/etot_simd.txt"
  [[ -s "$scratch/etot_scalar.txt" ]] || {
    echo "simd smoke: no thermo rows found" >&2; exit 1; }
  paste "$scratch/etot_scalar.txt" "$scratch/etot_simd.txt" |
    awk 'function abs(x){return x<0?-x:x}
         NF != 2 {bad=1}
         {d=abs($1-$2)/(abs($1)>1?abs($1):1);
          if (d>1e-6) {printf "TotEng mismatch: %s vs %s\n",$1,$2; bad=1}}
         END{exit bad}' || {
    echo "simd smoke: scalar vs MLK_SIMD=on total energy diverged" >&2
    exit 1
  }
  "$build_dir/tests/minilmp_tests" --gtest_filter='Simd*'
  bash "$repo/tests/simd_sanitize.sh" "$repo"
  echo "simd smoke: OK"
elif [[ "$balance_smoke" == 1 ]]; then
  # Decomposition smoke (tests/balance_smoke.sh): the droplet example with
  # `sort every 5` + `balance rcb 1.2` armed — end-of-run imbalance
  # breakdown line and the balance.imbalance_ratio counter track — then the
  # randomized decomposition/migration property suites, the bitwise
  # sort x balance x build-path sweep, and the balance-state restart
  # round-trip (docs/DECOMPOSITION.md).
  bash "$repo/tests/balance_smoke.sh" \
    "$build_dir/examples/run_script" "$build_dir/tests/validate_trace" \
    "$repo/examples/in.droplet"
  "$build_dir/tests/minilmp_tests" --gtest_filter='RcbCuts*:UniformCuts*:DomainCuts*:Migrate*:AtomSort*:Balancer*:SortBalanceSweep*:RestartBalance*'
  echo "balance smoke: OK"
elif [[ -n "$gtest_filter" ]]; then
  "$build_dir/tests/minilmp_tests" --gtest_filter="$gtest_filter"
else
  ctest --test-dir "$build_dir" --output-on-failure
fi
