// validate_trace <trace.json> — tier-1 smoke checker for chrome://tracing
// output (run_tier1.sh --profile / --overlap). Exits 0 iff the file parses
// as JSON and the traceEvents array contains kernel spans, Verlet-phase
// region spans, and at least one deep-copy span — the observable contract
// of the profiling hook layer on a real run.
//
// With --require-instance-tracks it additionally demands the per-instance
// thread tracks produced by the overlapped Verlet loop: at least two
// "thread_name" metadata entries beginning with "instance-" (the compute
// and comm kk::DeviceInstance stream threads), with at least one kernel or
// region span recorded on an instance track.
//
// Counter events (ph:"C" — memory watermarks, telemetry ring drops, batch
// scheduler queue depth) are always structurally validated: every counter
// must carry a numeric args.value. --require-counters demands that at least
// one counter track exists (any traced run emits mem.* counters), and each
// --require-counter=<name> demands a specific track (run_tier1.sh
// --telemetry asks for telemetry.ring_drops).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/json.hpp"

int main(int argc, char** argv) {
  bool require_instances = false;
  bool require_counters = false;
  std::vector<std::string> required_counter_names;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-instance-tracks") == 0)
      require_instances = true;
    else if (std::strcmp(argv[i], "--require-counters") == 0)
      require_counters = true;
    else if (std::strncmp(argv[i], "--require-counter=", 18) == 0)
      required_counter_names.push_back(argv[i] + 18);
    else
      path = argv[i];
  }
  if (!path) {
    std::fprintf(stderr,
                 "usage: validate_trace [--require-instance-tracks] "
                 "[--require-counters] [--require-counter=<name>...] "
                 "<trace.json>\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "validate_trace: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  mlk::json::Value doc;
  try {
    doc = mlk::json::parse(ss.str());
  } catch (const mlk::json::ParseError& e) {
    std::fprintf(stderr, "validate_trace: %s\n", e.what());
    return 1;
  }

  const mlk::json::Value& events = doc["traceEvents"];
  if (!events.is_array() || events.arr.empty()) {
    std::fprintf(stderr, "validate_trace: traceEvents missing or empty\n");
    return 1;
  }

  // Pass 1: map tid -> thread_name from "M" metadata events, and find the
  // tracks named by kk::DeviceInstance stream threads.
  std::set<double> instance_tids;
  for (const auto& e : events.arr) {
    if (e["ph"].str != "M" || e["name"].str != "thread_name") continue;
    const std::string& tname = e["args"]["name"].str;
    if (tname.rfind("instance-", 0) == 0) instance_tids.insert(e["tid"].number);
  }

  int kernels = 0, verlet_regions = 0, deep_copies = 0;
  int instance_spans = 0;
  int counters = 0, bad_counters = 0;
  std::set<std::string> counter_names;
  for (const auto& e : events.arr) {
    if (e["ph"].str == "C") {
      ++counters;
      counter_names.insert(e["name"].str);
      if (!e["args"]["value"].is_number()) ++bad_counters;
      continue;
    }
    const std::string& cat = e["cat"].str;
    if (cat.rfind("kernel", 0) == 0) ++kernels;
    else if (cat == "deep_copy") ++deep_copies;
    else if (cat == "region" && e["name"].str.rfind("Verlet::", 0) == 0)
      ++verlet_regions;
    if ((cat.rfind("kernel", 0) == 0 || cat == "region") &&
        instance_tids.count(e["tid"].number))
      ++instance_spans;
  }

  std::printf("validate_trace: %zu events (%d kernel, %d Verlet region, "
              "%d deep_copy, %zu instance tracks, %d instance spans, "
              "%d counter events on %zu tracks)\n",
              events.arr.size(), kernels, verlet_regions, deep_copies,
              instance_tids.size(), instance_spans, counters,
              counter_names.size());
  if (kernels == 0 || verlet_regions == 0 || deep_copies == 0) {
    std::fprintf(stderr, "validate_trace: missing required span kinds\n");
    return 1;
  }
  if (require_instances && (instance_tids.size() < 2 || instance_spans == 0)) {
    std::fprintf(stderr,
                 "validate_trace: expected >= 2 'instance-*' thread tracks "
                 "with spans (overlapped run)\n");
    return 1;
  }
  if (bad_counters > 0) {
    std::fprintf(stderr,
                 "validate_trace: %d ph:\"C\" events lack a numeric "
                 "args.value\n",
                 bad_counters);
    return 1;
  }
  if (require_counters && counters == 0) {
    std::fprintf(stderr, "validate_trace: expected counter (ph:\"C\") "
                         "events, found none\n");
    return 1;
  }
  for (const std::string& name : required_counter_names) {
    if (!counter_names.count(name)) {
      std::fprintf(stderr,
                   "validate_trace: required counter track '%s' missing\n",
                   name.c_str());
      return 1;
    }
  }
  return 0;
}
