// validate_trace <trace.json> — tier-1 smoke checker for chrome://tracing
// output (run_tier1.sh --profile). Exits 0 iff the file parses as JSON and
// the traceEvents array contains kernel spans, Verlet-phase region spans,
// and at least one deep-copy span — the observable contract of the
// profiling hook layer on a real run.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/json.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: validate_trace <trace.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in.good()) {
    std::fprintf(stderr, "validate_trace: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();

  mlk::json::Value doc;
  try {
    doc = mlk::json::parse(ss.str());
  } catch (const mlk::json::ParseError& e) {
    std::fprintf(stderr, "validate_trace: %s\n", e.what());
    return 1;
  }

  const mlk::json::Value& events = doc["traceEvents"];
  if (!events.is_array() || events.arr.empty()) {
    std::fprintf(stderr, "validate_trace: traceEvents missing or empty\n");
    return 1;
  }

  int kernels = 0, verlet_regions = 0, deep_copies = 0;
  for (const auto& e : events.arr) {
    const std::string& cat = e["cat"].str;
    if (cat.rfind("kernel", 0) == 0) ++kernels;
    else if (cat == "deep_copy") ++deep_copies;
    else if (cat == "region" && e["name"].str.rfind("Verlet::", 0) == 0)
      ++verlet_regions;
  }

  std::printf("validate_trace: %zu events (%d kernel, %d Verlet region, "
              "%d deep_copy)\n",
              events.arr.size(), kernels, verlet_regions, deep_copies);
  if (kernels == 0 || verlet_regions == 0 || deep_copies == 0) {
    std::fprintf(stderr, "validate_trace: missing required span kinds\n");
    return 1;
  }
  return 0;
}
