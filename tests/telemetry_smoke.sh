#!/usr/bin/env bash
# Telemetry smoke (ctest `telemetry_smoke`, run_tier1.sh --telemetry): run
# the melt example with the live telemetry hub streaming (MLK_TELEMETRY) and
# a chrome trace, then check the observable contract end to end:
#
#   * the JSON snapshot exists, carries the mlk-telemetry-1 schema, and
#     (since the final atexit snapshot lands after the run's Simulation
#     detached) records the finished run's terminal summary;
#   * the NDJSON tail exists and streams step records;
#   * the ring drop counter is on record (and reported here);
#   * the chrome trace carries ph:"C" counter tracks, including the
#     telemetry.ring_drops and memory watermark counters.
#
# Usage: telemetry_smoke.sh <run_script> <validate_trace> <in.melt>
set -euo pipefail

run_script="$1"
validate_trace="$2"
melt_in="$3"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
snap="$scratch/telemetry.json"

(cd "$scratch" &&
 MLK_TELEMETRY="$snap:interval_ms=5,coords_every=25" \
 MLK_TRACE="$scratch/melt.trace.json" \
   "$run_script" "$melt_in")

fail() { echo "telemetry smoke: $*" >&2; exit 1; }

[[ -s "$snap" ]] || fail "snapshot $snap missing or empty"
grep -q '"schema":"mlk-telemetry-1"' "$snap" || fail "snapshot schema wrong"
grep -q '"finished":\[{' "$snap" || fail "snapshot has no finished-run summary"
grep -q '"name":"main"' "$snap" || fail "finished summary lost attribution"
grep -q '"last_step":250' "$snap" || fail "finished summary missed step 250"

[[ -s "$snap.ndjson" ]] || fail "NDJSON tail $snap.ndjson missing or empty"
steps="$(grep -c '"type":"step"' "$snap.ndjson" || true)"
thermos="$(grep -c '"type":"thermo"' "$snap.ndjson" || true)"
insitus="$(grep -c '"type":"insitu"' "$snap.ndjson" || true)"
(( steps >= 1 )) || fail "no step samples in the NDJSON tail"
(( insitus >= 1 )) || fail "no in-situ records in the NDJSON tail"

drops="$(sed -n 's/.*"drops":{"total":\([0-9]*\)}.*/\1/p' "$snap")"
[[ -n "$drops" ]] || fail "snapshot has no drop counter"

"$validate_trace" --require-counters \
  --require-counter=telemetry.ring_drops \
  --require-counter=mem.hwm_bytes \
  "$scratch/melt.trace.json"

echo "telemetry smoke: $steps step, $thermos thermo, $insitus insitu" \
     "samples streamed; $drops ring drops"
echo "telemetry smoke: OK"
