// Shared fixtures: small ready-to-run systems and numerical differentiation
// used by force-correctness property tests across all potentials.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "minilammps.hpp"

namespace mlk::testing {

/// Build a serial LJ system on a jittered fcc lattice, fully set up
/// (ghosts + neighbor list + initial forces).
inline std::unique_ptr<Simulation> make_lj_system(
    int cells = 3, double rho = 0.8442, double jitter = 0.05,
    const std::string& style = "lj/cut", double temperature = 1.44) {
  init_all();
  auto sim = std::make_unique<Simulation>();
  Input in(*sim);
  in.line("units lj");
  in.line("lattice fcc " + std::to_string(rho));
  in.line("create_atoms " + std::to_string(cells) + " " +
          std::to_string(cells) + " " + std::to_string(cells) + " jitter " +
          std::to_string(jitter) + " 78123");
  in.line("mass 1 1.0");
  if (temperature > 0.0) in.line("velocity all create " +
                                 std::to_string(temperature) + " 87287");
  in.line("pair_style " + style + " 2.5");
  in.line("pair_coeff * * 1.0 1.0");
  sim->thermo.print = false;
  return sim;
}

/// Total potential energy of the current configuration (rebuilds ghosts,
/// neighbor list, and forces from scratch).
inline double total_pe(Simulation& sim) {
  if (!sim.setup_done) {
    sim.setup();
    return sim.potential_energy();
  }
  sim.atom.clear_ghosts();
  sim.comm.exchange(sim.atom, sim.domain);
  sim.comm.borders(sim.atom, sim.domain);
  sim.neighbor.build(sim.atom, sim.domain);
  sim.compute_forces(/*eflag=*/true);
  return sim.potential_energy();
}

/// Analytic force on atom i, dim d, for the current configuration.
inline double analytic_force(Simulation& sim, localint i, int d) {
  total_pe(sim);  // refresh forces
  sim.atom.sync<kk::Host>(F_MASK);
  return sim.atom.k_f.h_view(std::size_t(i), std::size_t(d));
}

/// Central-difference numerical force: -dE/dx_i,d.
inline double numerical_force(Simulation& sim, localint i, int d,
                              double h = 1e-6) {
  sim.atom.sync<kk::Host>(X_MASK);
  auto x = sim.atom.k_x.h_view;
  const double x0 = x(std::size_t(i), std::size_t(d));

  x(std::size_t(i), std::size_t(d)) = x0 + h;
  sim.atom.modified<kk::Host>(X_MASK);
  const double ep = total_pe(sim);

  x(std::size_t(i), std::size_t(d)) = x0 - h;
  sim.atom.modified<kk::Host>(X_MASK);
  const double em = total_pe(sim);

  x(std::size_t(i), std::size_t(d)) = x0;
  sim.atom.modified<kk::Host>(X_MASK);
  total_pe(sim);  // restore state
  return -(ep - em) / (2.0 * h);
}

}  // namespace mlk::testing
