#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "engine/neighbor_kokkos.hpp"
#include "test_helpers.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

// Canonical multiset of (i, j) entries of a list, for order-independent
// comparison between builders.
std::multiset<std::pair<int, int>> list_pairs(const NeighborList& list) {
  std::multiset<std::pair<int, int>> out;
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<kk::Host>();
  l.k_numneigh.sync<kk::Host>();
  for (localint i = 0; i < list.inum; ++i)
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c)
      out.emplace(int(i), l.k_neighbors.h_view(std::size_t(i), std::size_t(c)));
  return out;
}

struct NeighCase {
  NeighStyle style;
  bool newton;
};

class NeighborStyles : public ::testing::TestWithParam<NeighCase> {};

TEST_P(NeighborStyles, BinnedMatchesBruteForce) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.style = GetParam().style;
  sim->neighbor.newton = GetParam().newton;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  auto ref = brute_force_list(sim->atom, sim->domain, sim->neighbor.cutghost(),
                              GetParam().style, GetParam().newton,
                              sim->atom.nlocal);
  EXPECT_EQ(list_pairs(sim->neighbor.list), list_pairs(ref));
  EXPECT_GT(sim->neighbor.list.total_pairs(), 0);
}

TEST_P(NeighborStyles, DeviceBuildMatchesHostBuild) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.style = GetParam().style;
  sim->neighbor.newton = GetParam().newton;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  NeighborKokkos nk;
  nk.cutoff = 2.5;
  nk.skin = sim->neighbor.skin;
  nk.style = GetParam().style;
  nk.newton = GetParam().newton;
  nk.build(sim->atom, sim->domain);

  EXPECT_EQ(list_pairs(sim->neighbor.list), list_pairs(nk.list));
}

INSTANTIATE_TEST_SUITE_P(
    Styles, NeighborStyles,
    ::testing::Values(NeighCase{NeighStyle::Full, false},
                      NeighCase{NeighStyle::Half, false},
                      NeighCase{NeighStyle::Half, true}),
    [](const auto& info) {
      if (info.param.style == NeighStyle::Full) return "Full";
      return info.param.newton ? "HalfNewtonOn" : "HalfNewtonOff";
    });

TEST(Neighbor, FullHasTwiceTheLocalPairsOfHalf) {
  auto sim = make_lj_system(3, 0.8442, 0.0);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.build(sim->atom, sim->domain);
  const bigint full_pairs = sim->neighbor.list.total_pairs();

  sim->neighbor.style = NeighStyle::Half;
  sim->neighbor.newton = true;
  sim->neighbor.build(sim->atom, sim->domain);
  const bigint half_pairs = sim->neighbor.list.total_pairs();

  // Full counts each owned-owned pair twice; owned-ghost pairs appear once
  // per owned endpoint in full and once total in half/newton-on, so full
  // is exactly double.
  EXPECT_EQ(full_pairs, 2 * half_pairs);
}

TEST(Neighbor, HalfNewtonOnEachPairAppearsOnceGlobally) {
  auto sim = make_lj_system(2, 0.8442, 0.05);
  sim->neighbor.style = NeighStyle::Half;
  sim->neighbor.newton = true;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  // Map ghosts back to owners by tag; every unordered owner-pair + image
  // must appear exactly once in a half newton-on list.
  auto& l = sim->neighbor.list;
  auto tagv = sim->atom.k_tag.h_view;
  auto xv = sim->atom.k_x.h_view;
  std::set<std::tuple<tagint, tagint, long, long, long>> seen;
  for (localint i = 0; i < l.inum; ++i) {
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c) {
      const int j = l.k_neighbors.h_view(std::size_t(i), std::size_t(c));
      tagint ti = tagv(std::size_t(i)), tj = tagv(std::size_t(j));
      // Identify the periodic image by the rounded displacement.
      long ix = std::lround((xv(std::size_t(i), 0) - xv(std::size_t(j), 0)) * 1e6);
      long iy = std::lround((xv(std::size_t(i), 1) - xv(std::size_t(j), 1)) * 1e6);
      long iz = std::lround((xv(std::size_t(i), 2) - xv(std::size_t(j), 2)) * 1e6);
      if (ti > tj || (ti == tj && (ix < 0 || (ix == 0 && (iy < 0 || (iy == 0 && iz < 0)))))) {
        std::swap(ti, tj);
        ix = -ix;
        iy = -iy;
        iz = -iz;
      }
      auto key = std::make_tuple(ti, tj, ix, iy, iz);
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate pair " << ti << "-" << tj;
    }
  }
}

TEST(Neighbor, CheckDistanceTriggersOnLargeMove) {
  auto sim = make_lj_system(2, 0.8442, 0.0);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  sim->neighbor.store_build_positions(sim->atom);
  EXPECT_FALSE(sim->neighbor.check_distance(sim->atom));

  auto x = sim->atom.k_x.h_view;
  x(0, 0) += 0.6 * sim->neighbor.skin;  // > skin/2
  EXPECT_TRUE(sim->neighbor.check_distance(sim->atom));
}

TEST(Neighbor, TwoDTableRowsAreBounded) {
  auto sim = make_lj_system(3, 0.8442, 0.05);
  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  auto& l = sim->neighbor.list;
  EXPECT_EQ(l.k_neighbors.extent(0), std::size_t(l.inum));
  EXPECT_EQ(l.k_neighbors.extent(1), std::size_t(l.maxneighs));
  for (localint i = 0; i < l.inum; ++i)
    EXPECT_LE(l.k_numneigh.h_view(std::size_t(i)), l.maxneighs);
}

TEST(Neighbor, AvgNeighborsMatchesDensityEstimate) {
  // Ideal-gas estimate: full list row = rho * 4/3 pi rc^3 (rc = cut+skin).
  auto sim = make_lj_system(4, 0.8442, 0.02);
  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  const double rc = sim->neighbor.cutghost();
  constexpr double kPi = 3.14159265358979323846;
  const double expect = 0.8442 * 4.0 / 3.0 * kPi * rc * rc * rc;
  EXPECT_NEAR(sim->neighbor.list.avg_neighbors(), expect, expect * 0.15);
}

}  // namespace
}  // namespace mlk
