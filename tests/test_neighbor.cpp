#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "engine/neighbor_kokkos.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace mlk {
namespace {

using testing::make_lj_system;

// Canonical multiset of (i, j) entries of a list — owned and ghost rows —
// for order-independent comparison between builders.
std::multiset<std::pair<int, int>> list_pairs(const NeighborList& list) {
  std::multiset<std::pair<int, int>> out;
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<kk::Host>();
  l.k_numneigh.sync<kk::Host>();
  for (localint i = 0; i < list.inum + list.gnum; ++i)
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c)
      out.emplace(int(i), l.k_neighbors.h_view(std::size_t(i), std::size_t(c)));
  return out;
}

// Row-wise neighbor table with each row sorted, for per-row comparison that
// is insensitive to within-row ordering (binned vs brute-force traversal).
std::vector<std::vector<int>> rows_sorted(const NeighborList& list) {
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<kk::Host>();
  l.k_numneigh.sync<kk::Host>();
  std::vector<std::vector<int>> out(std::size_t(list.inum + list.gnum));
  for (localint i = 0; i < list.inum + list.gnum; ++i) {
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c)
      out[std::size_t(i)].push_back(
          l.k_neighbors.h_view(std::size_t(i), std::size_t(c)));
    std::sort(out[std::size_t(i)].begin(), out[std::size_t(i)].end());
  }
  return out;
}

// Exact row-wise table (original order), for the bitwise-order contract
// between the host and device binned builds.
std::vector<std::vector<int>> rows_exact(const NeighborList& list) {
  auto& l = const_cast<NeighborList&>(list);
  l.k_neighbors.sync<kk::Host>();
  l.k_numneigh.sync<kk::Host>();
  std::vector<std::vector<int>> out(std::size_t(list.inum + list.gnum));
  for (localint i = 0; i < list.inum + list.gnum; ++i)
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c)
      out[std::size_t(i)].push_back(
          l.k_neighbors.h_view(std::size_t(i), std::size_t(c)));
  return out;
}

struct NeighCase {
  NeighStyle style;
  bool newton;
};

class NeighborStyles : public ::testing::TestWithParam<NeighCase> {};

TEST_P(NeighborStyles, BinnedMatchesBruteForce) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.style = GetParam().style;
  sim->neighbor.newton = GetParam().newton;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  auto ref = brute_force_list(sim->atom, sim->domain, sim->neighbor.cutghost(),
                              GetParam().style, GetParam().newton,
                              sim->atom.nlocal);
  EXPECT_EQ(list_pairs(sim->neighbor.list), list_pairs(ref));
  EXPECT_GT(sim->neighbor.list.total_pairs(), 0);
}

TEST_P(NeighborStyles, DeviceBuildMatchesHostBuild) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.style = GetParam().style;
  sim->neighbor.newton = GetParam().newton;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  NeighborKokkos nk;
  nk.cutoff = 2.5;
  nk.skin = sim->neighbor.skin;
  nk.style = GetParam().style;
  nk.newton = GetParam().newton;
  nk.build(sim->atom, sim->domain);

  EXPECT_EQ(list_pairs(sim->neighbor.list), list_pairs(nk.list));
}

INSTANTIATE_TEST_SUITE_P(
    Styles, NeighborStyles,
    ::testing::Values(NeighCase{NeighStyle::Full, false},
                      NeighCase{NeighStyle::Half, false},
                      NeighCase{NeighStyle::Half, true}),
    [](const auto& info) {
      if (info.param.style == NeighStyle::Full) return "Full";
      return info.param.newton ? "HalfNewtonOn" : "HalfNewtonOff";
    });

TEST(Neighbor, FullHasTwiceTheLocalPairsOfHalf) {
  auto sim = make_lj_system(3, 0.8442, 0.0);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.build(sim->atom, sim->domain);
  const bigint full_pairs = sim->neighbor.list.total_pairs();

  sim->neighbor.style = NeighStyle::Half;
  sim->neighbor.newton = true;
  sim->neighbor.build(sim->atom, sim->domain);
  const bigint half_pairs = sim->neighbor.list.total_pairs();

  // Full counts each owned-owned pair twice; owned-ghost pairs appear once
  // per owned endpoint in full and once total in half/newton-on, so full
  // is exactly double.
  EXPECT_EQ(full_pairs, 2 * half_pairs);
}

TEST(Neighbor, HalfNewtonOnEachPairAppearsOnceGlobally) {
  auto sim = make_lj_system(2, 0.8442, 0.05);
  sim->neighbor.style = NeighStyle::Half;
  sim->neighbor.newton = true;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);

  // Map ghosts back to owners by tag; every unordered owner-pair + image
  // must appear exactly once in a half newton-on list.
  auto& l = sim->neighbor.list;
  auto tagv = sim->atom.k_tag.h_view;
  auto xv = sim->atom.k_x.h_view;
  std::set<std::tuple<tagint, tagint, long, long, long>> seen;
  for (localint i = 0; i < l.inum; ++i) {
    for (int c = 0; c < l.k_numneigh.h_view(std::size_t(i)); ++c) {
      const int j = l.k_neighbors.h_view(std::size_t(i), std::size_t(c));
      tagint ti = tagv(std::size_t(i)), tj = tagv(std::size_t(j));
      // Identify the periodic image by the rounded displacement.
      long ix = std::lround((xv(std::size_t(i), 0) - xv(std::size_t(j), 0)) * 1e6);
      long iy = std::lround((xv(std::size_t(i), 1) - xv(std::size_t(j), 1)) * 1e6);
      long iz = std::lround((xv(std::size_t(i), 2) - xv(std::size_t(j), 2)) * 1e6);
      if (ti > tj || (ti == tj && (ix < 0 || (ix == 0 && (iy < 0 || (iy == 0 && iz < 0)))))) {
        std::swap(ti, tj);
        ix = -ix;
        iy = -iy;
        iz = -iz;
      }
      auto key = std::make_tuple(ti, tj, ix, iy, iz);
      EXPECT_TRUE(seen.insert(key).second)
          << "duplicate pair " << ti << "-" << tj;
    }
  }
}

TEST(Neighbor, CheckDistanceTriggersOnLargeMove) {
  auto sim = make_lj_system(2, 0.8442, 0.0);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  sim->neighbor.store_build_positions(sim->atom);
  EXPECT_FALSE(sim->neighbor.check_distance(sim->atom));

  auto x = sim->atom.k_x.h_view;
  x(0, 0) += 0.6 * sim->neighbor.skin;  // > skin/2
  EXPECT_TRUE(sim->neighbor.check_distance(sim->atom));
}

TEST(Neighbor, TwoDTableRowsAreBounded) {
  auto sim = make_lj_system(3, 0.8442, 0.05);
  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  auto& l = sim->neighbor.list;
  EXPECT_EQ(l.k_neighbors.extent(0), std::size_t(l.inum));
  EXPECT_EQ(l.k_neighbors.extent(1), std::size_t(l.maxneighs));
  for (localint i = 0; i < l.inum; ++i)
    EXPECT_LE(l.k_numneigh.h_view(std::size_t(i)), l.maxneighs);
}

// --- Host/device/brute-force equivalence sweep (docs/NEIGHBOR.md) --------
//
// Sweeps {half, full} x {newton on, off} x {ghost_rows} on a randomized box
// and checks three contracts at once:
//  * device rows == host rows *in order* (the bitwise-identity contract),
//  * both match brute_force_list up to within-row ordering,
//  * both paths populate the interior/boundary partition identically and
//    ninterior + nboundary == inum (regression for the stale-partition bug).
struct EquivCase {
  NeighStyle style;
  bool newton;
  bool ghost_rows;
};

class NeighborEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(NeighborEquivalence, HostDeviceBruteForceAgree) {
  const EquivCase p = GetParam();
  auto sim = make_lj_system(3, 0.8442, 0.08);
  auto& n = sim->neighbor;
  n.style = p.style;
  n.newton = p.newton;
  n.ghost_rows = p.ghost_rows;
  n.cutoff = 2.5;
  sim->comm.cutghost = n.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  n.build_path = NeighBuildPath::Host;
  n.build(sim->atom, sim->domain);
  const auto host_rows = rows_exact(n.list);
  const localint host_gnum = n.list.gnum;
  const localint host_ninterior = n.list.ninterior;
  n.list.k_interior.sync<kk::Host>();
  std::vector<int> host_interior;
  for (localint i = 0; i < n.list.ninterior; ++i)
    host_interior.push_back(n.list.k_interior.h_view(std::size_t(i)));
  ASSERT_EQ(n.list.ninterior + n.list.nboundary, n.list.inum);

  n.build_path = NeighBuildPath::Device;
  n.build(sim->atom, sim->domain);
  EXPECT_EQ(n.list.gnum, host_gnum);
  EXPECT_EQ(rows_exact(n.list), host_rows) << "device rows differ from host";

  // Partition: same size, same members, and it covers every owned row.
  EXPECT_EQ(n.list.ninterior + n.list.nboundary, n.list.inum);
  EXPECT_EQ(n.list.ninterior, host_ninterior);
  n.list.k_interior.sync<kk::Host>();
  std::vector<int> dev_interior;
  for (localint i = 0; i < n.list.ninterior; ++i)
    dev_interior.push_back(n.list.k_interior.h_view(std::size_t(i)));
  EXPECT_EQ(dev_interior, host_interior);

  auto ref = brute_force_list(sim->atom, sim->domain, n.cutghost(), p.style,
                              p.newton, sim->atom.nlocal, p.ghost_rows);
  EXPECT_EQ(ref.gnum, host_gnum);
  EXPECT_EQ(rows_sorted(n.list), rows_sorted(ref));
  if (p.ghost_rows) {
    EXPECT_GT(n.list.gnum, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeighborEquivalence,
    ::testing::Values(EquivCase{NeighStyle::Full, false, false},
                      EquivCase{NeighStyle::Full, true, false},
                      EquivCase{NeighStyle::Full, false, true},
                      EquivCase{NeighStyle::Full, true, true},
                      EquivCase{NeighStyle::Half, false, false},
                      EquivCase{NeighStyle::Half, true, false}),
    [](const auto& info) {
      std::string name =
          info.param.style == NeighStyle::Full ? "Full" : "Half";
      name += info.param.newton ? "NewtonOn" : "NewtonOff";
      if (info.param.ghost_rows) name += "GhostRows";
      return name;
    });

TEST(Neighbor, HalfGhostRowsRejectedOnBothPaths) {
  auto sim = make_lj_system(2, 0.8442, 0.0);
  auto& n = sim->neighbor;
  n.style = NeighStyle::Half;
  n.ghost_rows = true;
  n.cutoff = 2.5;
  sim->comm.cutghost = n.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  n.build_path = NeighBuildPath::Host;
  EXPECT_THROW(n.build(sim->atom, sim->domain), Error);
  n.build_path = NeighBuildPath::Device;
  EXPECT_THROW(n.build(sim->atom, sim->domain), Error);
}

TEST(Neighbor, BruteForceMaxneighsMatchesHostSemantics) {
  // With a cutoff shorter than the nearest-neighbor distance every row is
  // empty: both builders must report maxneighs == 0 (true max, no floor)
  // while still allocating a 1-column table.
  auto sim = make_lj_system(2, 0.8442, 0.0);
  auto& n = sim->neighbor;
  n.cutoff = 0.1;
  n.skin = 0.05;
  sim->comm.cutghost = n.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  n.build(sim->atom, sim->domain);

  auto ref = brute_force_list(sim->atom, sim->domain, n.cutghost(),
                              NeighStyle::Full, false, sim->atom.nlocal);
  EXPECT_EQ(n.list.maxneighs, 0);
  EXPECT_EQ(ref.maxneighs, 0);
  EXPECT_EQ(ref.k_neighbors.extent(1), std::size_t(1));
  EXPECT_EQ(n.list.total_pairs(), 0);
  EXPECT_EQ(ref.total_pairs(), 0);
}

// --- Resize-and-retry (device fill strategy) ------------------------------

TEST(NeighborKokkos, ResizeRetryAmortizesAcrossRebuilds) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  NeighborKokkos nk;
  nk.cutoff = 2.5;
  nk.skin = sim->neighbor.skin;
  nk.style = NeighStyle::Full;
  nk.build(sim->atom, sim->domain);
  const bigint cold_retries = nk.nretries;
  EXPECT_GT(nk.maxneighs_hint, 0);

  // Steady state: the high-water capacity from the first build makes every
  // later build of the same configuration retry-free.
  for (int rep = 0; rep < 3; ++rep)
    nk.build(sim->atom, sim->domain);
  EXPECT_EQ(nk.nretries, cold_retries);
  EXPECT_EQ(nk.nbuilds, 4);

  // The hint covers the largest actual row.
  nk.list.k_numneigh.sync<kk::Host>();
  int true_max = 0;
  for (localint i = 0; i < nk.list.inum; ++i)
    true_max = std::max(true_max, nk.list.k_numneigh.h_view(std::size_t(i)));
  EXPECT_GE(nk.maxneighs_hint, true_max);
}

TEST(NeighborKokkos, UndersizedHintRetriesThenRecovers) {
  auto sim = make_lj_system(3, 0.8442, 0.05);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  NeighborKokkos nk;
  nk.cutoff = 2.5;
  nk.skin = sim->neighbor.skin;
  nk.style = NeighStyle::Full;
  nk.maxneighs_hint = 2;  // deliberately far too small
  nk.build(sim->atom, sim->domain);
  EXPECT_GE(nk.nretries, 1);
  EXPECT_GT(nk.maxneighs_hint, 2);

  // Overflow never corrupted the list: it matches the host build.
  auto& host = sim->neighbor;
  host.build(sim->atom, sim->domain);
  EXPECT_EQ(rows_exact(nk.list), rows_exact(host.list));

  const bigint after_cold = nk.nretries;
  nk.build(sim->atom, sim->domain);
  EXPECT_EQ(nk.nretries, after_cold);  // grown capacity sticks
}

TEST(NeighborKokkos, FillStrategiesProduceIdenticalLists) {
  auto sim = make_lj_system(3, 0.8442, 0.08);
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);

  NeighborKokkos retry, baseline;
  for (NeighborKokkos* nk : {&retry, &baseline}) {
    nk->cutoff = 2.5;
    nk->skin = sim->neighbor.skin;
    nk->style = NeighStyle::Half;
    nk->newton = true;
  }
  baseline.strategy = DeviceFillStrategy::CountThenFill;
  retry.build(sim->atom, sim->domain);
  baseline.build(sim->atom, sim->domain);
  EXPECT_EQ(rows_exact(retry.list), rows_exact(baseline.list));
  EXPECT_EQ(baseline.nretries, 0);  // count-then-fill never retries
}

// --- Rebuild trigger: every / delay / check + dangerous builds ------------

TEST(Neighbor, WantsRebuildHonorsEveryDelayCheck) {
  auto sim = make_lj_system(2, 0.8442, 0.0);
  auto& n = sim->neighbor;
  n.cutoff = 2.5;
  sim->comm.cutghost = n.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  n.build(sim->atom, sim->domain);
  n.store_build_positions(sim->atom);
  n.last_build = 100;

  // delay gates absolutely, regardless of every/check.
  n.check = false;
  n.every = 1;
  n.delay = 10;
  EXPECT_FALSE(n.wants_rebuild(105, sim->atom));
  EXPECT_FALSE(n.wants_rebuild(109, sim->atom));
  EXPECT_TRUE(n.wants_rebuild(110, sim->atom));

  // every counts steps since the last build, not absolute-step multiples.
  n.delay = 0;
  n.every = 4;
  EXPECT_FALSE(n.wants_rebuild(101, sim->atom));
  EXPECT_FALSE(n.wants_rebuild(103, sim->atom));
  EXPECT_TRUE(n.wants_rebuild(104, sim->atom));

  // check: even an allowed step rebuilds only after real motion.
  n.check = true;
  n.every = 1;
  EXPECT_FALSE(n.wants_rebuild(104, sim->atom));
  auto x = sim->atom.k_x.h_view;
  x(0, 0) += 0.6 * n.skin;  // > skin/2
  EXPECT_TRUE(n.wants_rebuild(104, sim->atom));
}

TEST(Neighbor, DangerousBuildCountedOnlyAtEarliestAllowedStep) {
  Neighbor n;
  n.check = true;
  n.every = 1;
  n.delay = 5;
  n.last_build = 100;
  n.note_dangerous(105);  // fired the first step delay permitted
  EXPECT_EQ(n.ndanger, 1);
  n.note_dangerous(107);  // fired later: healthy
  EXPECT_EQ(n.ndanger, 1);

  n.check = false;  // without check every build is scheduled, never dangerous
  n.note_dangerous(105);
  EXPECT_EQ(n.ndanger, 1);

  n.check = true;
  n.every = 10;
  n.delay = 0;
  n.last_build = 200;
  n.note_dangerous(210);  // first every-multiple
  EXPECT_EQ(n.ndanger, 2);
}

TEST(Neighbor, DelayHonoredDuringRun) {
  // A delay longer than the run must suppress every rebuild after setup.
  // (Before the fix, `delay` was parsed but never consulted.)
  auto sim = make_lj_system(3, 0.8442, 0.05);
  Input in(*sim);
  in.line("neigh_modify every 1 delay 1000 check yes");
  in.line("fix 1 all nve");
  in.line("run 30");
  EXPECT_EQ(sim->neighbor.nbuilds, 1);  // the setup build only
  EXPECT_EQ(sim->neighbor.ndanger, 0);
}

TEST(Neighbor, DangerousBuildsCountedDuringRun) {
  // Hot system + a delay that forces the list stale: the first allowed
  // rebuild step must trip the distance check and count as dangerous.
  auto sim = make_lj_system(3, 0.8442, 0.05, "lj/cut", 3.0);
  Input in(*sim);
  in.line("neigh_modify every 1 delay 20 check yes");
  in.line("fix 1 all nve");
  in.line("run 60");
  EXPECT_GT(sim->neighbor.nbuilds, 1);
  EXPECT_GE(sim->neighbor.ndanger, 1);
}

TEST(Neighbor, AvgNeighborsMatchesDensityEstimate) {
  // Ideal-gas estimate: full list row = rho * 4/3 pi rc^3 (rc = cut+skin).
  auto sim = make_lj_system(4, 0.8442, 0.02);
  sim->neighbor.style = NeighStyle::Full;
  sim->neighbor.cutoff = 2.5;
  sim->comm.cutghost = sim->neighbor.cutghost();
  sim->comm.borders(sim->atom, sim->domain);
  sim->neighbor.build(sim->atom, sim->domain);
  const double rc = sim->neighbor.cutghost();
  constexpr double kPi = 3.14159265358979323846;
  const double expect = 0.8442 * 4.0 / 3.0 * kPi * rc * rc * rc;
  EXPECT_NEAR(sim->neighbor.list.avg_neighbors(), expect, expect * 0.15);
}

}  // namespace
}  // namespace mlk
