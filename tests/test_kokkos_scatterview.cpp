#include <gtest/gtest.h>

#include <vector>

#include "kokkos/core.hpp"
#include "kokkos/scatterview.hpp"

namespace {

// All three deconflicting strategies must produce identical results for the
// same scatter pattern (§3.2: ScatterView transparently swaps strategies).
class ScatterModes : public ::testing::TestWithParam<kk::ScatterMode> {};

TEST_P(ScatterModes, UnstructuredAccumulationMatchesSerial) {
  const std::size_t n_bins = 64;
  const std::size_t n_items = 50000;

  kk::View2D<double, kk::Device> target("t", n_bins, 3);
  target.fill(0.0);
  kk::ScatterView<double, 2, kk::Device> sv(target, GetParam());
  auto acc = sv.access();

  kk::parallel_for("scatter", kk::RangePolicy<kk::Device>(0, n_items),
                   [=](std::size_t i) {
                     const std::size_t bin = (i * 2654435761u) % n_bins;
                     acc.add(bin, i % 3, 1.0);
                   });
  sv.contribute();

  std::vector<double> expect(n_bins * 3, 0.0);
  for (std::size_t i = 0; i < n_items; ++i)
    expect[((i * 2654435761u) % n_bins) * 3 + i % 3] += 1.0;
  for (std::size_t b = 0; b < n_bins; ++b)
    for (std::size_t d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(target(b, d), expect[b * 3 + d])
          << "bin " << b << " dim " << d;
}

INSTANTIATE_TEST_SUITE_P(AllModes, ScatterModes,
                         ::testing::Values(kk::ScatterMode::Atomic,
                                           kk::ScatterMode::Duplicated,
                                           kk::ScatterMode::Sequential),
                         [](const auto& info) {
                           switch (info.param) {
                             case kk::ScatterMode::Atomic: return "Atomic";
                             case kk::ScatterMode::Duplicated:
                               return "Duplicated";
                             default: return "Sequential";
                           }
                         });

TEST(ScatterView, DefaultModesPerSpace) {
  EXPECT_EQ(kk::default_scatter_mode<kk::Device>(), kk::ScatterMode::Atomic);
  EXPECT_EQ(kk::default_scatter_mode<kk::Host>(), kk::ScatterMode::Sequential);
}

TEST(ScatterView, DuplicatedReusableAfterContribute) {
  kk::View1D<double, kk::Device> target("t", 8);
  target.fill(0.0);
  kk::ScatterView<double, 1, kk::Device> sv(target,
                                            kk::ScatterMode::Duplicated);
  for (int pass = 0; pass < 3; ++pass) {
    auto acc = sv.access();
    kk::parallel_for("scatter2", kk::RangePolicy<kk::Device>(0, 80),
                     [=](std::size_t i) { acc.add(i % 8, 1.0); });
    sv.contribute();
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(target(i), 30.0);
}

TEST(ScatterView, Rank1Atomic) {
  kk::View1D<double, kk::Device> target("t", 4);
  target.fill(0.0);
  kk::ScatterView<double, 1, kk::Device> sv(target);
  auto acc = sv.access();
  kk::parallel_for("scatter3", kk::RangePolicy<kk::Device>(0, 10000),
                   [=](std::size_t i) { acc.add(i % 4, 0.5); });
  sv.contribute();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(target(i), 1250.0);
}

}  // namespace
