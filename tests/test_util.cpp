#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/random.hpp"
#include "util/string_utils.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace mlk {
namespace {

TEST(Tokenize, SplitsOnWhitespace) {
  const auto t = tokenize("  pair_style   lj/cut  2.5 ");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "pair_style");
  EXPECT_EQ(t[1], "lj/cut");
  EXPECT_EQ(t[2], "2.5");
}

TEST(Tokenize, CommentsStripEverythingAfterHash) {
  const auto t = tokenize("run 100 # production segment");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], "100");
}

TEST(Tokenize, EmptyAndCommentOnlyLines) {
  EXPECT_TRUE(tokenize("").empty());
  EXPECT_TRUE(tokenize("   ").empty());
  EXPECT_TRUE(tokenize("# all comment").empty());
}

TEST(Parse, ToDouble) {
  EXPECT_DOUBLE_EQ(to_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(to_double("-1e-3"), -1e-3);
  EXPECT_THROW(to_double("2.5x"), Error);
  EXPECT_THROW(to_double(""), Error);
}

TEST(Parse, ToInt) {
  EXPECT_EQ(to_int("42"), 42);
  EXPECT_EQ(to_int("-7"), -7);
  EXPECT_THROW(to_int("4.2"), Error);
}

TEST(Parse, ToBigintHandles64Bit) {
  EXPECT_EQ(to_bigint("3000000000"), 3000000000LL);  // > 2^31
}

TEST(Parse, ToBool) {
  EXPECT_TRUE(to_bool("on"));
  EXPECT_TRUE(to_bool("yes"));
  EXPECT_FALSE(to_bool("off"));
  EXPECT_FALSE(to_bool("no"));
  EXPECT_THROW(to_bool("maybe"), Error);
}

TEST(Suffix, StripStyleSuffix) {
  std::string sfx;
  EXPECT_EQ(strip_style_suffix("lj/cut/kk", &sfx), "lj/cut");
  EXPECT_EQ(sfx, "/kk");
  EXPECT_EQ(strip_style_suffix("lj/cut/kk/host", &sfx), "lj/cut");
  EXPECT_EQ(sfx, "/kk/host");
  EXPECT_EQ(strip_style_suffix("lj/cut/kk/device", &sfx), "lj/cut");
  EXPECT_EQ(sfx, "/kk/device");
  EXPECT_EQ(strip_style_suffix("lj/cut", &sfx), "lj/cut");
  EXPECT_TRUE(sfx.empty());
}

TEST(Random, DeterministicForSameSeed) {
  RanPark a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Random, UniformMomentsReasonable) {
  RanPark rng(991);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GT(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sumsq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(sumsq / n - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Random, GaussianMoments) {
  RanPark rng(77);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.02);
}

TEST(Random, IRandomBounds) {
  RanPark rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.irandom(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
  }
}

TEST(Random, RejectsBadSeed) { EXPECT_THROW(RanPark(0), Error); }

TEST(TimerSet, Accumulates) {
  TimerSet ts;
  ts.add("Pair", 1.5);
  ts.add("Pair", 0.5);
  ts.add("Neigh", 0.25);
  EXPECT_DOUBLE_EQ(ts.total("Pair"), 2.0);
  EXPECT_DOUBLE_EQ(ts.total("Neigh"), 0.25);
  EXPECT_DOUBLE_EQ(ts.total("Comm"), 0.0);
}

TEST(Types, Int4Equality) {
  int4 a{1, 2, 3, 4}, b{1, 2, 3, 4}, c{1, 2, 3, 5};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace mlk
